// Package learn implements the paper's core contribution (§3.3): deriving
// declarative CEP gesture queries from a handful of recorded samples.
//
// The pipeline interprets a gesture as a sequence of poses:
//
//  1. Distance-based sampling (§3.3.1) — related to density-based
//     clustering — compresses each recorded sample (a 30 Hz path of joint
//     positions in the transformed user frame) into a short sequence of
//     clusters ("characteristic points").
//  2. Window merging (§3.3.2) aligns the cluster sequences of all samples
//     and merges them into one minimal bounding rectangle (window) per
//     pose, incrementally, warning when a new sample deviates too much.
//  3. Generalization scaling widens the windows; validation (§3.3.3, in
//     package validate) checks for the overlap problem.
//  4. Query generation (§3.3.4) emits the range-predicate CEP query.
package learn

import (
	"fmt"
	"time"

	"gesturecep/internal/kinect"
)

// PathPoint is one measurement of a recorded sample: the coordinates of all
// tracked joints at one sensor tick, already in the transformed user frame
// (§3.2).
type PathPoint struct {
	Index  int
	Ts     time.Time
	Coords []float64 // len = 3 × number of tracked joints, joint-major
}

// Sample is one recorded gesture execution restricted to the tracked
// joints.
type Sample struct {
	Joints []kinect.Joint
	Points []PathPoint
}

// Dims returns the dimensionality of the sample's coordinate space.
func (s Sample) Dims() int { return len(s.Joints) * 3 }

// Duration is the time span of the sample.
func (s Sample) Duration() time.Duration {
	if len(s.Points) < 2 {
		return 0
	}
	return s.Points[len(s.Points)-1].Ts.Sub(s.Points[0].Ts)
}

// Validate reports structural problems.
func (s Sample) Validate() error {
	if len(s.Joints) == 0 {
		return fmt.Errorf("learn: sample tracks no joints")
	}
	if len(s.Points) < 2 {
		return fmt.Errorf("learn: sample has %d points, need at least 2", len(s.Points))
	}
	want := s.Dims()
	for i, p := range s.Points {
		if len(p.Coords) != want {
			return fmt.Errorf("learn: point %d has %d coords, want %d", i, len(p.Coords), want)
		}
		if i > 0 && s.Points[i].Ts.Before(s.Points[i-1].Ts) {
			return fmt.Errorf("learn: point %d timestamp out of order", i)
		}
	}
	return nil
}

// SampleFromFrames projects transformed skeleton frames onto the tracked
// joints. Frames must already be in the user-invariant frame (apply
// transform.FrameSlice first when starting from raw camera frames).
func SampleFromFrames(frames []kinect.Frame, joints []kinect.Joint) (Sample, error) {
	if len(joints) == 0 {
		return Sample{}, fmt.Errorf("learn: no joints to track")
	}
	for _, j := range joints {
		if j < 0 || int(j) >= kinect.NumJoints {
			return Sample{}, fmt.Errorf("learn: invalid joint %d", j)
		}
	}
	s := Sample{Joints: append([]kinect.Joint(nil), joints...)}
	for i, f := range frames {
		coords := make([]float64, 0, len(joints)*3)
		for _, j := range joints {
			p := f.Pos(j)
			coords = append(coords, p.X, p.Y, p.Z)
		}
		s.Points = append(s.Points, PathPoint{Index: i, Ts: f.Ts, Coords: coords})
	}
	if err := s.Validate(); err != nil {
		return Sample{}, err
	}
	return s, nil
}

// CoordNames returns the attribute names of the sample's coordinate space
// in order, e.g. ["rHand_x", "rHand_y", "rHand_z"].
func CoordNames(joints []kinect.Joint) []string {
	out := make([]string, 0, len(joints)*3)
	for _, j := range joints {
		for c := 0; c < 3; c++ {
			out = append(out, kinect.FieldName(j, c))
		}
	}
	return out
}
