package learn

import (
	"math"
	"strings"
	"testing"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// lineSample builds a synthetic straight-line sample of the right hand from
// (0,0,0) to (L,0,0) with n points, one per 33 ms.
func lineSample(t *testing.T, n int, length float64) Sample {
	t.Helper()
	s := Sample{Joints: []kinect.Joint{kinect.RightHand}}
	for i := 0; i < n; i++ {
		x := length * float64(i) / float64(n-1)
		s.Points = append(s.Points, PathPoint{
			Index:  i,
			Ts:     t0().Add(time.Duration(i) * 33 * time.Millisecond),
			Coords: []float64{x, 0, 0},
		})
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSampleValidate(t *testing.T) {
	bad := []Sample{
		{},
		{Joints: []kinect.Joint{kinect.RightHand}},
		{Joints: []kinect.Joint{kinect.RightHand}, Points: []PathPoint{
			{Coords: []float64{1, 2, 3}},
			{Coords: []float64{1, 2}},
		}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sample %d accepted", i)
		}
	}
	// Out-of-order timestamps rejected.
	s := lineSample(t, 5, 100)
	s.Points[3].Ts = s.Points[0].Ts.Add(-time.Second)
	if err := s.Validate(); err == nil {
		t.Error("out-of-order timestamps accepted")
	}
}

func TestSampleFromFrames(t *testing.T) {
	var frames []kinect.Frame
	for i := 0; i < 5; i++ {
		var f kinect.Frame
		f.Ts = t0().Add(time.Duration(i) * kinect.FramePeriod)
		f.Joints[kinect.RightHand] = geom.V(float64(i*10), 1, 2)
		frames = append(frames, f)
	}
	s, err := SampleFromFrames(frames, []kinect.Joint{kinect.RightHand})
	if err != nil {
		t.Fatal(err)
	}
	if s.Dims() != 3 || len(s.Points) != 5 {
		t.Fatalf("sample shape: dims=%d points=%d", s.Dims(), len(s.Points))
	}
	if s.Points[3].Coords[0] != 30 {
		t.Errorf("coords = %v", s.Points[3].Coords)
	}
	if _, err := SampleFromFrames(frames, nil); err == nil {
		t.Error("no joints accepted")
	}
	if _, err := SampleFromFrames(frames, []kinect.Joint{kinect.Joint(99)}); err == nil {
		t.Error("invalid joint accepted")
	}
	names := CoordNames([]kinect.Joint{kinect.RightHand})
	if len(names) != 3 || names[0] != "rHand_x" || names[2] != "rHand_z" {
		t.Errorf("CoordNames = %v", names)
	}
}

func TestMetrics(t *testing.T) {
	a := PathPoint{Index: 0, Ts: t0(), Coords: []float64{0, 0, 0}}
	b := PathPoint{Index: 4, Ts: t0().Add(200 * time.Millisecond), Coords: []float64{3, 4, 0}}
	if d := (Euclidean{}).Distance(a, b); d != 5 {
		t.Errorf("euclidean = %v", d)
	}
	if d := (EveryK{}).Distance(a, b); d != 4 {
		t.Errorf("every-k = %v", d)
	}
	if d := (TimeDelta{}).Distance(a, b); d != 200 {
		t.Errorf("time-ms = %v", d)
	}
	w := Weighted{Weights: []float64{0, 1, 1}}
	if d := w.Distance(a, b); d != 4 {
		t.Errorf("weighted = %v", d)
	}
	for _, name := range []string{"", "euclidean", "every-k", "time-ms"} {
		if _, err := MetricByName(name); err != nil {
			t.Errorf("MetricByName(%q): %v", name, err)
		}
	}
	if _, err := MetricByName("nope"); err == nil {
		t.Error("unknown metric resolved")
	}
	s := lineSample(t, 11, 100)
	if d := PathDeviation(s, Euclidean{}); math.Abs(d-100) > 1e-9 {
		t.Errorf("path deviation = %v", d)
	}
}

func TestSamplerConfigValidate(t *testing.T) {
	if err := DefaultSamplerConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []SamplerConfig{
		{},                                  // no threshold at all
		{RelativeFraction: -0.1},            // negative fraction
		{RelativeFraction: 1.5},             // fraction >= 1
		{MaxDist: 10, MinClusterPoints: -1}, // negative min points
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad sampler config %d accepted", i)
		}
	}
}

func TestExtractClustersAbsoluteThreshold(t *testing.T) {
	// 101 points over 1000 mm with threshold 200 → a new cluster starts
	// whenever the distance to the reference exceeds 200 mm → 5 clusters.
	s := lineSample(t, 101, 1000)
	clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, MaxDist: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 5 {
		t.Fatalf("clusters = %d, want 5", len(clusters))
	}
	// Clusters tile the sample: counts sum to the point count.
	var total int
	for _, c := range clusters {
		total += c.Count
		if c.End.Before(c.Start) {
			t.Error("cluster times inverted")
		}
		if !c.Bounds.Contains(c.Centroid) {
			t.Error("centroid outside bounds")
		}
	}
	if total != 101 {
		t.Errorf("cluster counts sum to %d, want 101", total)
	}
	// Centroids are ordered along the path.
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Centroid[0] <= clusters[i-1].Centroid[0] {
			t.Error("centroids not ordered")
		}
	}
}

func TestExtractClustersRelativeThreshold(t *testing.T) {
	s := lineSample(t, 101, 1000)
	// 25% of 1000 mm = 250 mm threshold → 4 clusters.
	clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, RelativeFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 4 {
		t.Fatalf("clusters = %d, want 4", len(clusters))
	}
	// The relative threshold adapts to scale: the same gesture twice as
	// large yields the same cluster count.
	s2 := lineSample(t, 101, 2000)
	clusters2, err := ExtractClusters(s2, SamplerConfig{Metric: Euclidean{}, RelativeFraction: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters2) != len(clusters) {
		t.Errorf("relative threshold not scale-free: %d vs %d", len(clusters2), len(clusters))
	}
}

func TestExtractClustersEveryK(t *testing.T) {
	s := lineSample(t, 30, 100)
	clusters, err := ExtractClusters(s, SamplerConfig{Metric: EveryK{}, MaxDist: 10})
	if err != nil {
		t.Fatal(err)
	}
	// A new cluster every 11th tuple (exceeds 10): ~3 clusters.
	if len(clusters) != 3 {
		t.Errorf("every-k clusters = %d, want 3", len(clusters))
	}
}

func TestExtractClustersStationarySample(t *testing.T) {
	// No movement at all: a single cluster, no division by zero.
	s := Sample{Joints: []kinect.Joint{kinect.RightHand}}
	for i := 0; i < 10; i++ {
		s.Points = append(s.Points, PathPoint{
			Index: i, Ts: t0().Add(time.Duration(i) * kinect.FramePeriod),
			Coords: []float64{5, 5, 5},
		})
	}
	clusters, err := ExtractClusters(s, DefaultSamplerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || clusters[0].Count != 10 {
		t.Errorf("stationary clusters = %+v", clusters)
	}
}

func TestExtractClustersMinPoints(t *testing.T) {
	s := lineSample(t, 101, 1000)
	cfg := SamplerConfig{Metric: Euclidean{}, MaxDist: 200, MinClusterPoints: 30}
	clusters, err := ExtractClusters(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Interior clusters of ~20 points get dropped, but first and last are
	// always kept.
	if len(clusters) != 2 {
		t.Errorf("min-points filter left %d clusters, want 2", len(clusters))
	}
}

func TestMergerSingleSample(t *testing.T) {
	s := lineSample(t, 101, 1000)
	clusters, _ := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, MaxDist: 250})
	m, err := NewMerger(DefaultMergerConfig(), s.Joints)
	if err != nil {
		t.Fatal(err)
	}
	if warns, err := m.Add(clusters); err != nil || len(warns) != 0 {
		t.Fatalf("Add: %v, warns %v", err, warns)
	}
	model, err := m.Model("line")
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(model.Windows) != len(clusters) {
		t.Errorf("windows = %d, clusters = %d", len(model.Windows), len(clusters))
	}
	if model.Samples != 1 {
		t.Errorf("samples = %d", model.Samples)
	}
	if model.TotalDuration <= 0 {
		t.Error("no total duration")
	}
	for _, sd := range model.StepDurations {
		if sd <= 0 {
			t.Error("non-positive step duration")
		}
	}
}

func TestMergerAlignsDifferentClusterCounts(t *testing.T) {
	// Two samples of the same path sampled at different rates produce
	// different cluster counts; merging must align them.
	s1 := lineSample(t, 101, 1000)
	s2 := lineSample(t, 61, 1000)
	c1, _ := ExtractClusters(s1, SamplerConfig{Metric: Euclidean{}, MaxDist: 250})
	c2, _ := ExtractClusters(s2, SamplerConfig{Metric: Euclidean{}, MaxDist: 200})
	if len(c1) == len(c2) {
		t.Fatalf("test setup: want different cluster counts, both %d", len(c1))
	}
	m, _ := NewMerger(DefaultMergerConfig(), s1.Joints)
	if _, err := m.Add(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Add(c2); err != nil {
		t.Fatal(err)
	}
	model, err := m.Model("line")
	if err != nil {
		t.Fatal(err)
	}
	// Windows cover the path from 0 to 1000 in x.
	first, last := model.Windows[0], model.Windows[len(model.Windows)-1]
	if first.Min[0] > 1 || last.Max[0] < 999 {
		t.Errorf("windows do not span the path: first %v last %v", first, last)
	}
	// Window centers are monotonically increasing in x.
	prev := math.Inf(-1)
	for _, w := range model.Windows {
		c := w.Center()[0]
		if c <= prev {
			t.Error("window centers not ordered along the path")
		}
		prev = c
	}
}

func TestMergerOutlierWarning(t *testing.T) {
	s1 := lineSample(t, 101, 1000)
	c1, _ := ExtractClusters(s1, SamplerConfig{Metric: Euclidean{}, MaxDist: 250})
	m, _ := NewMerger(DefaultMergerConfig(), s1.Joints)
	if _, err := m.Add(c1); err != nil {
		t.Fatal(err)
	}
	// Second "sample": same shape shifted 1200 mm up — clearly a different
	// movement.
	s2 := lineSample(t, 101, 1000)
	for i := range s2.Points {
		s2.Points[i].Coords[1] += 1200
	}
	c2, _ := ExtractClusters(s2, SamplerConfig{Metric: Euclidean{}, MaxDist: 250})
	warns, err := m.Add(c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) == 0 {
		t.Fatal("no outlier warning for a wildly different sample")
	}
	if warns[0].SampleIndex != 1 || warns[0].Distance < 1000 {
		t.Errorf("warning = %+v", warns[0])
	}
	if !strings.Contains(warns[0].String(), "deviates") {
		t.Errorf("warning text = %q", warns[0].String())
	}
	// A consistent repetition produces no warning.
	warns2, err := m.Add(c1)
	if err != nil {
		t.Fatal(err)
	}
	// (the merged windows now include the outlier, so only require no new
	// warnings for the identical sample)
	for _, w := range warns2 {
		if w.Distance > 100 {
			t.Errorf("unexpected warning for identical sample: %+v", w)
		}
	}
}

func TestMergerValidation(t *testing.T) {
	if _, err := NewMerger(MergerConfig{TargetPoses: -1}, []kinect.Joint{kinect.RightHand}); err == nil {
		t.Error("negative target poses accepted")
	}
	if _, err := NewMerger(DefaultMergerConfig(), nil); err == nil {
		t.Error("no joints accepted")
	}
	m, _ := NewMerger(DefaultMergerConfig(), []kinect.Joint{kinect.RightHand})
	if _, err := m.Add(nil); err == nil {
		t.Error("empty cluster list accepted")
	}
	if _, err := m.Add([]Cluster{{Centroid: []float64{1}}}); err == nil {
		t.Error("wrong-dim cluster accepted")
	}
	if _, err := m.Model("x"); err == nil {
		t.Error("model without samples accepted")
	}
	if _, err := m.Model(""); err == nil {
		t.Error("unnamed model accepted")
	}
}

func TestModelScaleWindows(t *testing.T) {
	s := lineSample(t, 101, 1000)
	c, _ := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, MaxDist: 250})
	m, _ := NewMerger(DefaultMergerConfig(), s.Joints)
	_, _ = m.Add(c)
	model, _ := m.Model("line")
	scaled, err := model.ScaleWindows(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scaled.Windows {
		sw, ow := scaled.Windows[i].Width(), model.Windows[i].Width()
		for d := range sw {
			if sw[d] < ow[d] || sw[d] < 100 {
				t.Errorf("window %d dim %d: %v -> %v", i, d, ow[d], sw[d])
			}
		}
	}
	if _, err := model.ScaleWindows(-1, 0); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestGenerateQueryStructure(t *testing.T) {
	s := lineSample(t, 101, 1000)
	c, _ := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, MaxDist: 350})
	m, _ := NewMerger(DefaultMergerConfig(), s.Joints)
	_, _ = m.Add(c)
	model, _ := m.Model("line")
	if len(model.Windows) != 3 {
		t.Fatalf("test setup: want 3 windows, got %d", len(model.Windows))
	}
	q, err := GenerateQuery(model, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if q.Output != "line" {
		t.Errorf("output = %q", q.Output)
	}
	atoms := q.Pattern.Atoms()
	if len(atoms) != 3 {
		t.Fatalf("atoms = %d", len(atoms))
	}
	for _, a := range atoms {
		if a.Source != "kinect_t" {
			t.Errorf("source = %q", a.Source)
		}
	}
	// Fig. 1 structure: outer node = (group -> atom) with within and
	// policies.
	if len(q.Pattern.Terms) != 2 || q.Pattern.Terms[0].Group == nil || q.Pattern.Terms[1].Atom == nil {
		t.Error("pattern is not left-nested like Fig. 1")
	}
	if !q.Pattern.HasWithin || !q.Pattern.HasSelect || !q.Pattern.HasConsume {
		t.Error("outer constraints missing")
	}
	inner := q.Pattern.Terms[0].Group
	if !inner.HasWithin {
		t.Error("inner within missing")
	}
	if inner.Within > q.Pattern.Within {
		t.Error("inner within exceeds outer within")
	}
}

func TestGenerateQuerySingleWindow(t *testing.T) {
	model := Model{
		Name:   "pose",
		Joints: []kinect.Joint{kinect.RightHand},
		Windows: []geom.MBR{
			mustCW(t, []float64{100, 200, -150}, []float64{80, 80, 80}),
		},
	}
	q, err := GenerateQuery(model, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Pattern.Atoms()) != 1 {
		t.Error("single-window query should have one atom")
	}
	if q.Pattern.HasWithin {
		t.Error("single-window query should not have within")
	}
}

func TestGenerateQueryNegativeCenterUsesPlus(t *testing.T) {
	model := Model{
		Name:   "pose",
		Joints: []kinect.Joint{kinect.RightHand},
		Windows: []geom.MBR{
			mustCW(t, []float64{0, 150, -120}, []float64{100, 100, 100}),
		},
	}
	r, err := GenerateQuery(model, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	text := query.Print(r)
	// The paper renders center −120 as "rHand_z ... + 120".
	if !strings.Contains(text, "rHand_z + 120") {
		t.Errorf("negative center not normalized:\n%s", text)
	}
	if !strings.Contains(text, "rHand_x - 0") {
		t.Errorf("zero center should render as '- 0' like Fig. 1:\n%s", text)
	}
}

func mustCW(t *testing.T, center, width []float64) geom.MBR {
	t.Helper()
	m, err := geom.FromCenterWidth(center, width)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
