package learn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
)

// Randomized invariants of the core learning data structures.

// randomWalkSample builds a sample following a bounded random walk.
func randomWalkSample(rng *rand.Rand, n int) Sample {
	s := Sample{Joints: []kinect.Joint{kinect.RightHand}}
	pos := [3]float64{}
	base := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			pos[d] += (rng.Float64()*2 - 1) * 60
		}
		s.Points = append(s.Points, PathPoint{
			Index:  i,
			Ts:     base.Add(time.Duration(i) * kinect.FramePeriod),
			Coords: []float64{pos[0], pos[1], pos[2]},
		})
	}
	return s
}

// TestQuickClustersTileSample: every point belongs to exactly one cluster;
// cluster counts sum to the sample size; cluster time ranges are ordered
// and non-overlapping; centroids lie inside their bounds.
func TestQuickClustersTileSample(t *testing.T) {
	f := func(seed int64, rawN uint8, rawFrac uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%120) + 2
		frac := 0.05 + float64(rawFrac%80)/100 // 0.05 .. 0.84
		if frac >= 1 {
			frac = 0.9
		}
		s := randomWalkSample(rng, n)
		clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, RelativeFraction: frac})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(clusters) == 0 {
			return false
		}
		total := 0
		for i, c := range clusters {
			total += c.Count
			if c.Count <= 0 || c.End.Before(c.Start) {
				return false
			}
			if !c.Bounds.Contains(c.Centroid) {
				t.Logf("seed %d: centroid outside bounds at cluster %d", seed, i)
				return false
			}
			if i > 0 && !clusters[i-1].End.Before(c.Start) {
				t.Logf("seed %d: cluster %d overlaps predecessor in time", seed, i)
				return false
			}
		}
		if total != n {
			t.Logf("seed %d: counts sum %d != %d", seed, total, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickLargerThresholdNeverMoreClusters: the cluster count is
// non-increasing in the threshold.
func TestQuickThresholdMonotonicity(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%120) + 5
		s := randomWalkSample(rng, n)
		prev := -1
		for _, frac := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
			clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, RelativeFraction: frac})
			if err != nil {
				return false
			}
			if prev >= 0 && len(clusters) > prev {
				t.Logf("seed %d: clusters grew from %d to %d at frac %v", seed, prev, len(clusters), frac)
				return false
			}
			prev = len(clusters)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergedWindowsCoverClusterBounds: in cluster-bounds mode, every
// merged window contains the aligned bounds of every sample, so every
// member point of every aligned cluster is inside its pose window.
func TestQuickMergedWindowsCover(t *testing.T) {
	f := func(seed int64, rawSamples uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nSamples := int(rawSamples%4) + 2
		merger, err := NewMerger(MergerConfig{Mode: WindowClusterBounds, OutlierDistance: 0}, []kinect.Joint{kinect.RightHand})
		if err != nil {
			return false
		}
		var all [][]Cluster
		for i := 0; i < nSamples; i++ {
			s := randomWalkSample(rng, 40+rng.Intn(40))
			clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, RelativeFraction: 0.2})
			if err != nil {
				return false
			}
			if _, err := merger.Add(clusters); err != nil {
				return false
			}
			all = append(all, clusters)
		}
		model, err := merger.Model("walk")
		if err != nil {
			return false
		}
		// Each sample's first cluster centroid must be inside the first
		// merged window, and — when the aligned model keeps more than one
		// pose — the last centroid inside the last window (alignment pins
		// both endpoints; a single-pose model only retains the start).
		first, last := model.Windows[0], model.Windows[len(model.Windows)-1]
		for _, clusters := range all {
			if !first.Contains(clusters[0].Centroid) {
				return false
			}
			if len(model.Windows) > 1 && !last.Contains(clusters[len(clusters)-1].Centroid) {
				return false
			}
		}
		// Windows have the right dimensionality and non-negative widths.
		for _, w := range model.Windows {
			if w.Dims() != 3 {
				return false
			}
			for _, width := range w.Width() {
				if width < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickScaleWindowsMonotone: scaling by f >= 1 never shrinks any
// dimension and keeps centers fixed.
func TestQuickScaleWindowsMonotone(t *testing.T) {
	f := func(seed int64, rawScale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 1 + float64(rawScale%40)/10 // 1.0 .. 4.9
		s := randomWalkSample(rng, 60)
		clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, RelativeFraction: 0.25})
		if err != nil {
			return false
		}
		merger, _ := NewMerger(DefaultMergerConfig(), s.Joints)
		if _, err := merger.Add(clusters); err != nil {
			return false
		}
		model, err := merger.Model("walk")
		if err != nil {
			return false
		}
		scaled, err := model.ScaleWindows(scale, 0)
		if err != nil {
			return false
		}
		for i := range model.Windows {
			ow, sw := model.Windows[i].Width(), scaled.Windows[i].Width()
			oc, sc := model.Windows[i].Center(), scaled.Windows[i].Center()
			for d := range ow {
				if sw[d] < ow[d]-1e-9 {
					return false
				}
				if diff := oc[d] - sc[d]; diff > 1e-6 || diff < -1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneratedQueryAlwaysParses: whatever the learner produces from
// random-walk "gestures" must be valid query text.
func TestQuickGeneratedQueryAlwaysParses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		merger, _ := NewMerger(DefaultMergerConfig(), []kinect.Joint{kinect.RightHand})
		for i := 0; i < 3; i++ {
			s := randomWalkSample(rng, 50)
			clusters, err := ExtractClusters(s, SamplerConfig{Metric: Euclidean{}, RelativeFraction: 0.2})
			if err != nil {
				return false
			}
			if _, err := merger.Add(clusters); err != nil {
				return false
			}
		}
		model, err := merger.Model("walk")
		if err != nil {
			return false
		}
		q, err := GenerateQuery(model, DefaultGenConfig())
		if err != nil {
			t.Logf("seed %d: generate: %v", seed, err)
			return false
		}
		if _, err := parseForTest(q); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// parseForTest round-trips a generated query through the text
// representation.
func parseForTest(q *query.Query) (*query.Query, error) {
	return query.Parse(query.Print(q))
}
