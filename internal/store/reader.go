package store

import (
	"errors"
	"fmt"
	"io"
	"os"

	"gesturecep/internal/stream"
)

// Reader iterates a recorded stream record by record, in append order,
// verifying every record's CRC, canonical encoding and ordinal continuity
// as it goes. Not safe for concurrent use.
type Reader struct {
	dir  string
	man  Manifest
	segs []int
	pos  int // next index into segs to open

	f          *os.File
	sr         *segmentReader
	started    bool // a segment has been opened; nextRecord is anchored
	nextRecord uint64
	records    uint64
	tuples     uint64

	meta   []segMeta // lazy per-segment metadata for seeks
	unlock func()    // archive compaction read-lock, released on Close
}

// segMeta caches what a seek needs to know about one segment without
// decoding it: its base record ordinal and (when present) its sparse
// index.
type segMeta struct {
	index    int
	base     uint64
	idx      *segIndex
	idxTried bool
}

// OpenReader opens a recorded stream for sequential reading.
func OpenReader(root, name string) (*Reader, error) {
	dir := StreamDir(root, name)
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	return &Reader{dir: dir, man: man, segs: segs}, nil
}

// Manifest returns the stream's immutable metadata.
func (r *Reader) Manifest() Manifest { return r.man }

// Fields returns the stream's tuple width.
func (r *Reader) Fields() int { return len(r.man.Fields) }

// Counters reports records and tuples read so far.
func (r *Reader) Counters() (records, tuples uint64) { return r.records, r.tuples }

// openNext advances to the next segment file. io.EOF when none remain.
func (r *Reader) openNext() error {
	r.closeSegment()
	if r.pos >= len(r.segs) {
		return io.EOF
	}
	index := r.segs[r.pos]
	r.pos++
	f, err := os.Open(segmentPath(r.dir, index))
	if err != nil {
		return err
	}
	sr, err := newSegmentReader(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: segment %d: %w", index, err)
	}
	if sr.hdr.fields != len(r.man.Fields) {
		f.Close()
		return fmt.Errorf("store: segment %d is %d fields wide, manifest declares %d",
			index, sr.hdr.fields, len(r.man.Fields))
	}
	if !r.started {
		// The first segment anchors the ordinal chain: a compacted stream
		// legitimately starts past record zero.
		r.started = true
		r.nextRecord = sr.hdr.baseRecord
	} else if sr.hdr.baseRecord != r.nextRecord {
		f.Close()
		return fmt.Errorf("store: segment %d starts at record %d, expected %d (missing segment?)",
			index, sr.hdr.baseRecord, r.nextRecord)
	}
	r.f, r.sr = f, sr
	return nil
}

// Next returns the tuples of the next record. io.EOF signals the clean end
// of the stream; a torn final record (crash without recovery) also ends
// the iteration cleanly, mirroring what Open would truncate. Any other
// decode failure is surfaced as an error — offline evaluation must not
// silently skip history.
func (r *Reader) Next() ([]stream.Tuple, error) {
	for {
		if r.sr == nil {
			if err := r.openNext(); err != nil {
				return nil, err
			}
		}
		b, err := r.sr.Next()
		if err == io.EOF {
			// Clean end of this segment; only the last may end the stream.
			if r.pos >= len(r.segs) {
				r.closeSegment()
				return nil, io.EOF
			}
			r.sr = nil
			continue
		}
		if err != nil {
			if errors.Is(err, errTorn) && r.pos >= len(r.segs) {
				r.closeSegment()
				return nil, io.EOF
			}
			return nil, err
		}
		r.nextRecord++
		r.records++
		r.tuples += uint64(len(b.Tuples))
		return b.Tuples, nil
	}
}

func (r *Reader) closeSegment() {
	if r.f != nil {
		r.f.Close()
		r.f, r.sr = nil, nil
	}
}

// Close releases the reader's file handle (and, for readers opened
// through an Archive, its compaction read-lock).
func (r *Reader) Close() error {
	r.closeSegment()
	if r.unlock != nil {
		r.unlock()
		r.unlock = nil
	}
	return nil
}

// ReadAll loads an entire recorded stream into memory — convenient for
// tests and small histories; replay and backfill stream instead.
func ReadAll(root, name string) ([]stream.Tuple, error) {
	r, err := OpenReader(root, name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []stream.Tuple
	for {
		tuples, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, tuples...)
	}
}
