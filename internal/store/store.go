// Package store is the durable stream history of the serving runtime: a
// segmented, append-only on-disk store for sensor tuple streams, plus the
// machinery that connects it to the live system — a Recorder that taps
// serve sessions without ever blocking the hot path, a Replayer that feeds
// recorded history back through a serving session at wall-clock, scaled or
// maximum speed, and a Backfill evaluator that runs any compiled
// anduin.Plan over recorded history offline.
//
// The paper's pipeline is learn-once/detect-live; this package turns the
// runtime into a lambda-style live+historical system: every detection is
// reproducible after the fact, and a newly learned query can be evaluated
// over yesterday's streams without replaying them through the network.
//
// # On-disk layout
//
// One recorded stream is one directory:
//
//	<root>/<stream>/manifest.json    immutable stream metadata
//	<root>/<stream>/000000000001.seg append-only segment files
//	<root>/<stream>/000000000001.idx sparse index sidecar (sealed segments)
//	<root>/<stream>/000000000002.seg
//	...
//
// The manifest is written once at creation and never mutated, so recovery
// never depends on a mutable metadata file: the segment set is discovered
// by directory scan and validated record by record. Sealed segments carry
// a CRC-framed sparse index sidecar (see index.go) that makes the archive
// seekable by record ordinal, tuple ordinal and event time; sidecars are
// pure accelerators and their absence or corruption only costs a scan.
//
// # Segment format
//
// Every segment starts with a fixed 16-byte header:
//
//	magic u32 ("GSEG") | version u8 | reserved u8 | fields u16 | baseRecord u64
//
// followed by records. A record is a CRC-framed batch of tuples whose
// payload is exactly the canonical internal/wire FrameBatch encoding (the
// batch handle carries the low 32 bits of the record's stream-wide
// ordinal, which lets readers detect spliced or reordered segments):
//
//	length u32 | crc32(payload) u32 | payload (wire batch, length bytes)
//
// Records are self-validating: a reader accepts a record only if the
// length is within bounds, the CRC matches, the batch decodes strictly
// (the wire codec is canonical), the batch width equals the manifest
// schema, and the ordinal continues the sequence. Anything else is either
// a torn tail (clean truncation point for recovery) or corruption (an
// error for readers, who must not silently skip history).
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// Format limits and defaults.
const (
	// FormatVersion identifies the segment file format.
	FormatVersion = 1
	// MaxRecordBytes bounds one record payload; it equals the wire frame
	// cap so a segment record is always a legal wire frame payload.
	MaxRecordBytes = wire.MaxFrame
	// DefaultSegmentBytes is the segment roll threshold.
	DefaultSegmentBytes = 4 << 20
	// DefaultBatchTuples is the number of tuples buffered per record.
	DefaultBatchTuples = 256
)

// manifestName is the per-stream metadata file.
const manifestName = "manifest.json"

// Manifest is the immutable metadata of one recorded stream.
type Manifest struct {
	Version       int      `json:"version"`
	Stream        string   `json:"stream"`
	Fields        []string `json:"fields"`
	CreatedUnixNs int64    `json:"created_unix_ns"`
}

// Options tunes a stream writer.
type Options struct {
	// SegmentBytes is the size threshold past which the current segment is
	// sealed and a new one started. Defaults to DefaultSegmentBytes.
	SegmentBytes int64
	// BatchTuples is the number of tuples buffered before a record is
	// written. Defaults to DefaultBatchTuples; clamped so a full record
	// never exceeds MaxRecordBytes.
	BatchTuples int
	// Sync fsyncs the segment file on every Flush and segment roll.
	// Durability against OS crashes at the price of flush latency.
	Sync bool
	// IndexEvery is the record stride between sparse-index entries in the
	// sidecar written when a segment seals. Defaults to DefaultIndexEvery;
	// a seek scans at most IndexEvery-1 records past its index entry.
	IndexEvery int
}

func (o Options) withDefaults(fields int) Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.IndexEvery <= 0 {
		o.IndexEvery = DefaultIndexEvery
	}
	if o.BatchTuples <= 0 {
		o.BatchTuples = DefaultBatchTuples
	}
	if o.BatchTuples > wire.MaxBatch {
		o.BatchTuples = wire.MaxBatch
	}
	// A record must stay a legal wire frame however wide the schema is.
	if max := (MaxRecordBytes - batchHeadBytes) / tupleBytes(fields); o.BatchTuples > max {
		o.BatchTuples = max
	}
	return o
}

const batchHeadBytes = 8  // wire batch payload header: handle u32 | count u16 | fields u16
const tupleHeadBytes = 16 // ts i64 | seq u64

// tupleBytes is the encoded size of one tuple of the given width.
func tupleBytes(fields int) int { return tupleHeadBytes + 8*fields }

// encodeStreamName maps an arbitrary stream name (e.g. a session ID chosen
// by a remote client) onto a safe directory name: [A-Za-z0-9._-] pass
// through, every other byte is %XX-escaped. Purely local — the manifest
// records the original name.
func encodeStreamName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	s := b.String()
	// Never produce a dot-only path element (".", "..").
	if strings.Trim(s, ".") == "" {
		return strings.ReplaceAll(s, ".", "%2E")
	}
	return s
}

// StreamDir returns the directory a stream is stored under.
func StreamDir(root, name string) string {
	return filepath.Join(root, encodeStreamName(name))
}

// Exists reports whether a recorded stream of that name is present.
func Exists(root, name string) bool {
	_, err := os.Stat(filepath.Join(StreamDir(root, name), manifestName))
	return err == nil
}

// ListStreams lists the recorded streams under root (original names from
// the manifests), sorted.
func ListStreams(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		man, err := readManifest(filepath.Join(root, e.Name()))
		if err != nil {
			continue // not a stream directory
		}
		out = append(out, man.Stream)
	}
	sort.Strings(out)
	return out, nil
}

func readManifest(dir string) (Manifest, error) {
	var man Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("store: %s: %w", manifestName, err)
	}
	if man.Version != FormatVersion {
		return man, fmt.Errorf("store: manifest format version %d, this build reads %d", man.Version, FormatVersion)
	}
	if len(man.Fields) == 0 || len(man.Fields) > wire.MaxTupleFields {
		return man, fmt.Errorf("store: manifest declares %d fields (want 1..%d)", len(man.Fields), wire.MaxTupleFields)
	}
	return man, nil
}

// writeManifest writes the manifest atomically (write + rename), so a
// crash can never leave a half-written metadata file behind.
func writeManifest(dir string, man Manifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// RecoveryInfo reports what Open had to repair on a crashed stream.
type RecoveryInfo struct {
	// TruncatedBytes is the size of the torn tail cut off the last segment.
	TruncatedBytes int64
	// RemovedSegments counts tail segments discarded entirely (torn before
	// their header was complete).
	RemovedSegments int
}

// Repaired reports whether recovery changed anything on disk.
func (ri RecoveryInfo) Repaired() bool {
	return ri.TruncatedBytes > 0 || ri.RemovedSegments > 0
}

// Create initializes a new recorded stream under root and returns a writer
// positioned at record zero. It fails if the stream already exists.
func Create(root, name string, schema *stream.Schema, opts Options) (*Writer, error) {
	if name == "" {
		return nil, fmt.Errorf("store: empty stream name")
	}
	if schema == nil {
		return nil, fmt.Errorf("store: nil schema")
	}
	if schema.Len() > wire.MaxTupleFields {
		return nil, fmt.Errorf("store: schema of %d fields exceeds the %d maximum", schema.Len(), wire.MaxTupleFields)
	}
	dir := StreamDir(root, name)
	if Exists(root, name) {
		return nil, fmt.Errorf("store: stream %q already exists under %s", name, root)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := Manifest{
		Version:       FormatVersion,
		Stream:        name,
		Fields:        schema.Fields(),
		CreatedUnixNs: time.Now().UnixNano(),
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	w := newWriter(dir, man, opts)
	if err := w.openSegment(1, 0); err != nil {
		return nil, err
	}
	return w, nil
}

// Open resumes appending to an existing recorded stream. A torn tail left
// by a crash is detected via the record CRCs and truncated back to the
// last valid record before new appends land; the repair is reported in
// Writer.Recovered.
func Open(root, name string, opts Options) (*Writer, error) {
	dir := StreamDir(root, name)
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	w := newWriter(dir, man, opts)
	if err := w.recover(); err != nil {
		return nil, err
	}
	return w, nil
}
