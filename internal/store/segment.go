package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"gesturecep/internal/wire"
)

const (
	segmentMagic   = 0x47534547 // "GSEG"
	segHeaderBytes = 16         // magic u32 | version u8 | reserved u8 | fields u16 | baseRecord u64
	recHeaderBytes = 8          // length u32 | crc32 u32
	segmentSuffix  = ".seg"
)

// segHeader is the decoded fixed header of one segment file.
type segHeader struct {
	fields     int
	baseRecord uint64
}

func encodeSegHeader(h segHeader) [segHeaderBytes]byte {
	var b [segHeaderBytes]byte
	binary.BigEndian.PutUint32(b[0:4], segmentMagic)
	b[4] = FormatVersion
	binary.BigEndian.PutUint16(b[6:8], uint16(h.fields))
	binary.BigEndian.PutUint64(b[8:16], h.baseRecord)
	return b
}

func decodeSegHeader(b []byte) (segHeader, error) {
	if len(b) < segHeaderBytes {
		return segHeader{}, fmt.Errorf("store: segment header of %d bytes, want %d", len(b), segHeaderBytes)
	}
	if magic := binary.BigEndian.Uint32(b[0:4]); magic != segmentMagic {
		return segHeader{}, fmt.Errorf("store: bad segment magic %#08x", magic)
	}
	if v := b[4]; v != FormatVersion {
		return segHeader{}, fmt.Errorf("store: segment format version %d, this build reads %d", v, FormatVersion)
	}
	h := segHeader{
		fields:     int(binary.BigEndian.Uint16(b[6:8])),
		baseRecord: binary.BigEndian.Uint64(b[8:16]),
	}
	if h.fields == 0 || h.fields > wire.MaxTupleFields {
		return segHeader{}, fmt.Errorf("store: segment declares %d fields (want 1..%d)", h.fields, wire.MaxTupleFields)
	}
	return h, nil
}

// segmentPath names the index-th segment of a stream directory.
func segmentPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%012d%s", index, segmentSuffix))
}

// listSegments returns the sorted segment indices present in dir.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) != 12+len(segmentSuffix) || filepath.Ext(name) != segmentSuffix {
			continue
		}
		var idx int
		if _, err := fmt.Sscanf(name, "%012d.seg", &idx); err != nil || idx <= 0 {
			continue
		}
		out = append(out, idx)
	}
	sort.Ints(out)
	return out, nil
}

// errTorn marks a segment tail that ends mid-record: a clean truncation
// point for recovery, an end-of-data condition nowhere else.
var errTorn = errors.New("store: torn record at segment tail")

// segmentReader decodes one segment file record by record, reusing one
// payload buffer. It validates everything a hostile or corrupted file
// could lie about before allocating: record lengths are bounded by
// MaxRecordBytes, payloads must CRC-check, decode canonically under the
// wire codec, match the expected schema width and continue the record
// ordinal sequence.
type segmentReader struct {
	r      *bufio.Reader
	hdr    segHeader
	next   uint64 // stream-wide ordinal expected of the next record
	buf    []byte
	rechdr [recHeaderBytes]byte
}

// newSegmentReader reads and validates the segment header. wantFields and
// wantBase are checked when non-negative / non-max (the fuzz target reads
// segments standalone and passes no expectations).
func newSegmentReader(r io.Reader) (*segmentReader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hb [segHeaderBytes]byte
	if _, err := io.ReadFull(br, hb[:]); err != nil {
		return nil, fmt.Errorf("store: short segment header: %w", err)
	}
	hdr, err := decodeSegHeader(hb[:])
	if err != nil {
		return nil, err
	}
	return &segmentReader{r: br, hdr: hdr, next: hdr.baseRecord}, nil
}

// newSegmentReaderAt wraps a file already positioned at a record boundary
// mid-segment — the seek path, which validated the header and picked the
// position from the sparse index. next is the stream-wide ordinal of the
// record at that position.
func newSegmentReaderAt(r io.Reader, hdr segHeader, next uint64) *segmentReader {
	return &segmentReader{r: bufio.NewReaderSize(r, 64<<10), hdr: hdr, next: next}
}

// Next decodes one record. io.EOF signals a clean end exactly at a record
// boundary; errTorn (wrapped) signals a truncated tail; any other error is
// corruption.
func (sr *segmentReader) Next() (wire.Batch, error) {
	if _, err := io.ReadFull(sr.r, sr.rechdr[:]); err != nil {
		if err == io.EOF {
			return wire.Batch{}, io.EOF
		}
		return wire.Batch{}, fmt.Errorf("%w: short record header: %v", errTorn, err)
	}
	n := binary.BigEndian.Uint32(sr.rechdr[0:4])
	sum := binary.BigEndian.Uint32(sr.rechdr[4:8])
	if n == 0 && sum == 0 {
		// A zeroed record header is the tail of a crash into preallocated
		// (zero-filled) file space — the WAL convention for end-of-data.
		return wire.Batch{}, fmt.Errorf("%w: zeroed record header at record %d", errTorn, sr.next)
	}
	if n < batchHeadBytes || n > MaxRecordBytes {
		return wire.Batch{}, fmt.Errorf("store: record %d declares %d payload bytes (want %d..%d)",
			sr.next, n, batchHeadBytes, MaxRecordBytes)
	}
	if cap(sr.buf) < int(n) {
		sr.buf = make([]byte, n)
	}
	payload := sr.buf[:n]
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		return wire.Batch{}, fmt.Errorf("%w: short record payload: %v", errTorn, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		// A genuine torn tail ends at physical EOF (a crash flushes a
		// prefix, possibly zero-filled by the filesystem). A CRC failure
		// with more bytes behind it is mid-file corruption — valid history
		// follows that a reader must not silently skip.
		if _, perr := sr.r.Peek(1); perr == io.EOF {
			return wire.Batch{}, fmt.Errorf("%w: record %d crc %#08x, stored %#08x", errTorn, sr.next, got, sum)
		}
		return wire.Batch{}, fmt.Errorf("store: record %d crc %#08x, stored %#08x (mid-segment corruption)", sr.next, got, sum)
	}
	b, err := wire.DecodeBatch(payload)
	if err != nil {
		return wire.Batch{}, fmt.Errorf("store: record %d: %w", sr.next, err)
	}
	if b.Fields != sr.hdr.fields {
		return wire.Batch{}, fmt.Errorf("store: record %d is %d fields wide, segment declares %d",
			sr.next, b.Fields, sr.hdr.fields)
	}
	if b.Handle != uint32(sr.next) {
		return wire.Batch{}, fmt.Errorf("store: record ordinal %d where %d was expected (spliced segment?)",
			b.Handle, uint32(sr.next))
	}
	sr.next++
	return b, nil
}

// segScan is the outcome of scanning one segment file for recovery.
type segScan struct {
	hdr        segHeader
	records    uint64 // valid records
	tuples     uint64
	validBytes int64 // offset just past the last valid record
	// Index rebuild material: one sparse entry per `every` records with a
	// segment-relative tuple ordinal (collected only when every > 0), and
	// the segment's event-time span.
	idx                 []idxEntry
	firstTsNs, lastTsNs int64
}

// scanSegment reads a segment file front to back and reports how much of
// it is valid. headerOK=false means the file is unusable from the header
// on (discard it entirely); otherwise validBytes is the safe truncation
// point — everything before it CRC-checked and decoded. A failure that is
// not a torn tail (mid-file corruption with data behind it) is returned
// as an error: truncating there would discard history that may still be
// valid, so recovery refuses rather than guessing. every > 0 additionally
// collects sparse-index entries so recovery can resume indexing the
// reopened segment.
func scanSegment(path string, every int) (s segScan, headerOK bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return segScan{}, false, err
	}
	defer f.Close()
	sr, err := newSegmentReader(f)
	if err != nil {
		return segScan{}, false, nil
	}
	s.hdr = sr.hdr
	s.validBytes = segHeaderBytes
	for {
		b, err := sr.Next()
		if err == io.EOF || errors.Is(err, errTorn) {
			// Clean end or torn tail: everything before this point is
			// intact, everything after is a crash artifact.
			return s, true, nil
		}
		if err != nil {
			return s, true, err
		}
		if len(b.Tuples) > 0 {
			if every > 0 && s.records%uint64(every) == 0 {
				s.idx = append(s.idx, idxEntry{
					tupleOrd: s.tuples, // segment-relative; caller adds the base
					tsNs:     b.Tuples[0].Ts.UnixNano(),
					offset:   s.validBytes,
				})
			}
			if s.firstTsNs == 0 {
				s.firstTsNs = b.Tuples[0].Ts.UnixNano()
			}
			for i := range b.Tuples {
				if ns := b.Tuples[i].Ts.UnixNano(); ns > s.lastTsNs {
					s.lastTsNs = ns
				}
			}
		}
		s.records++
		s.tuples += uint64(len(b.Tuples))
		s.validBytes += recHeaderBytes + int64(batchHeadBytes+len(b.Tuples)*tupleBytes(b.Fields))
	}
}
