package store

import (
	"errors"
	"fmt"
	"os"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// backfillEmitChunk is how many detections a wire backfill source buffers
// before pushing a frame — one full FrameBackfillDet per flush.
const backfillEmitChunk = wire.MaxDetections

// NewWireBackfillSource adapts an archive to the wire protocol's backfill
// handler (wire.Server.BackfillSource): plan names resolve through the
// server's registry (empty = every registered plan), streams open through
// the given opener — pass Archive.OpenReader so evaluation holds the
// compaction read-lock, or a closure over the package-level OpenReader for
// an archive nothing compacts. A stream the archive does not hold is
// reported as wire.ErrUnknownStream, which the protocol surfaces in
// BackfillReply.Missing instead of failing the request — the fleet
// coordinator's cue to retry the stream on the backend that recorded it.
func NewWireBackfillSource(reg *serve.Registry, open func(stream string) (*Reader, error)) wire.BackfillFunc {
	return func(stream string, gestures []string, since, until time.Time,
		emit func([]anduin.Detection) error) (records, tuples uint64, err error) {
		plans, err := reg.Resolve(gestures...)
		if err != nil {
			return 0, 0, err
		}
		r, err := open(stream)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return 0, 0, fmt.Errorf("stream %q: %w", stream, wire.ErrUnknownStream)
			}
			return 0, 0, err
		}
		defer r.Close()
		// Detections buffer into full wire frames; an emit failure (the
		// requesting connection died) stops evaluation at the next flush.
		var pending []anduin.Detection
		var emitErr error
		flush := func() {
			if emitErr != nil || len(pending) == 0 {
				return
			}
			emitErr = emit(pending)
			pending = pending[:0]
		}
		_, err = Backfill(r, plans, BackfillOptions{
			Discard: true,
			Since:   since,
			Until:   until,
			OnDetection: func(d anduin.Detection) {
				if emitErr != nil {
					return
				}
				pending = append(pending, d)
				if len(pending) >= backfillEmitChunk {
					flush()
				}
			},
		})
		records, tuples = r.Counters()
		if err != nil {
			return records, tuples, err
		}
		flush()
		return records, tuples, emitErr
	}
}
