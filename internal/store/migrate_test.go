package store

import (
	"io"
	"testing"

	"gesturecep/internal/stream"
)

// readAllTuples drains a reader to EOF and closes it.
func readAllTuples(t *testing.T, r *Reader) []stream.Tuple {
	t.Helper()
	var out []stream.Tuple
	for {
		tuples, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tuples...)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSyncMidStreamReadback pins the migration-source contract: Sync drains
// the tap backlog and flushes the segment so an independent reader sees
// every recorded tuple while the recorder stays live — the recording is
// readable at the migration cut without closing the session, and Recorded()
// is the exact cut ordinal the reader's contents match.
func TestSyncMidStreamReadback(t *testing.T) {
	arch := NewArchive(t.TempDir(), Options{}, 0)
	defer arch.Close()
	tuples := synthTuples(96)
	rec, err := arch.Record("live", synthSchema)
	if err != nil {
		t.Fatal(err)
	}
	tap := rec.Tap()
	for _, tp := range tuples[:64] {
		tap(tp)
	}
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Recorded(); got != 64 {
		t.Fatalf("Recorded() = %d after sync, want 64", got)
	}
	r, err := OpenReader(arch.Root(), rec.Stream())
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, readAllTuples(t, r), tuples[:64])

	// The recorder keeps accepting tuples after the mid-stream read — a
	// second sync exposes the longer prefix to a fresh reader.
	for _, tp := range tuples[64:] {
		tap(tp)
	}
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Recorded(); got != 96 {
		t.Fatalf("Recorded() = %d after second sync, want 96", got)
	}
	r, err = OpenReader(arch.Root(), rec.Stream())
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, readAllTuples(t, r), tuples)
	if err := arch.Release(rec); err != nil {
		t.Fatal(err)
	}
}

// TestLiveRecorderResolution pins the name → live recorder index a drain
// depends on: lookups resolve the session name even when a collision gave
// the stream a numeric suffix, latest-wins when a name is reused, and a
// released recorder stops resolving (a migration source must never sync a
// closed recorder).
func TestLiveRecorderResolution(t *testing.T) {
	arch := NewArchive(t.TempDir(), Options{}, 0)
	defer arch.Close()

	if _, ok := arch.LiveRecorder("ghost"); ok {
		t.Fatal("LiveRecorder resolved a name that was never recorded")
	}

	first, err := arch.Record("sess", synthSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := arch.LiveRecorder("sess"); !ok || got != first {
		t.Fatalf("LiveRecorder(sess) = %v, %v; want the open recorder", got, ok)
	}

	// A reused session name records under a suffixed stream; the live index
	// must follow the newest incarnation, not the stream name.
	second, err := arch.Record("sess", synthSchema)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stream() == first.Stream() {
		t.Fatalf("collision reused stream name %q", first.Stream())
	}
	if got, ok := arch.LiveRecorder("sess"); !ok || got != second {
		t.Fatalf("LiveRecorder(sess) = %v, %v; want the latest incarnation", got, ok)
	}

	// Releasing the latest drops the name from the live index entirely —
	// the older open recorder is a previous incarnation, not a valid
	// migration source for the current session.
	if err := arch.Release(second); err != nil {
		t.Fatal(err)
	}
	if _, ok := arch.LiveRecorder("sess"); ok {
		t.Fatal("LiveRecorder resolved a released session")
	}
	if err := arch.Release(first); err != nil {
		t.Fatal(err)
	}
}

// TestReplayOffset pins the catch-up window a migration target consumes:
// Offset skips exactly that many tuples, composes with Limit into an
// ordinal-bounded slice, and an Offset at or past the end replays nothing
// without error.
func TestReplayOffset(t *testing.T) {
	root := t.TempDir()
	tuples := synthTuples(40)
	w, err := Create(root, "stream", synthSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := w.Append(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name          string
		offset, limit int
		lo, hi        int // expected window into tuples
	}{
		{"skip-prefix", 15, 0, 15, 40},
		{"offset-plus-limit", 10, 5, 10, 15},
		{"offset-at-end", 40, 0, 40, 40},
		{"offset-past-end", 100, 0, 40, 40},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := OpenReader(root, "stream")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			var got []stream.Tuple
			stats, err := Replay(r, func(tp stream.Tuple) error {
				got = append(got, tp)
				return nil
			}, ReplayOptions{Offset: uint64(tc.offset), Limit: uint64(tc.limit)})
			if err != nil {
				t.Fatal(err)
			}
			tuplesEqual(t, got, tuples[tc.lo:tc.hi])
			if stats.Tuples != uint64(tc.hi-tc.lo) {
				t.Errorf("stats.Tuples = %d, want %d", stats.Tuples, tc.hi-tc.lo)
			}
		})
	}
}
