package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"gesturecep/internal/stream"
)

// DefaultRecorderBuffer is the default depth of a Recorder's tap buffer.
const DefaultRecorderBuffer = 4096

// Recorder decouples a live serving session from disk: the Tap function is
// installed on the session's feed path and only ever does a non-blocking
// send into a bounded buffer, so recording can never stall ingestion — if
// the disk falls behind, tuples are dropped from the recording (never from
// detection) and counted. A single drain goroutine owns the Writer.
type Recorder struct {
	w      *Writer
	ch     chan stream.Tuple
	syncCh chan chan error
	quit   chan struct{}
	done   chan struct{}

	// tapMu makes Close a barrier for in-flight taps: taps hold the read
	// side around the closed-check-then-send, Close flips closed under the
	// write side, so once Close holds the lock no tap can still sneak a
	// tuple into the buffer uncounted — Recorded()+Dropped() equals the
	// number of tap calls exactly.
	tapMu    sync.RWMutex
	closed   atomic.Bool
	recorded atomic.Uint64
	dropped  atomic.Uint64
	err      atomic.Value // first Writer error, as errBox

	closeOnce sync.Once
	closeErr  error
}

type errBox struct{ err error }

// NewRecorder starts recording into w, taking ownership of it (Close
// closes the writer). buffer <= 0 selects DefaultRecorderBuffer.
func NewRecorder(w *Writer, buffer int) *Recorder {
	if buffer <= 0 {
		buffer = DefaultRecorderBuffer
	}
	r := &Recorder{
		w:      w,
		ch:     make(chan stream.Tuple, buffer),
		syncCh: make(chan chan error),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.drain()
	return r
}

// Tap returns the function to install on the live feed path (e.g. as
// serve.SessionOptions.Tap). It never blocks on the disk: a full buffer or
// a recorder that has stopped counts the tuple as dropped and moves on.
// (The read lock only contends with Close itself, and only for an
// instant.)
func (r *Recorder) Tap() func(stream.Tuple) {
	return func(t stream.Tuple) {
		r.tapMu.RLock()
		defer r.tapMu.RUnlock()
		if r.closed.Load() || r.err.Load() != nil {
			r.dropped.Add(1)
			return
		}
		select {
		case r.ch <- t:
		default:
			r.dropped.Add(1)
		}
	}
}

// drain moves tuples from the tap buffer to the writer until Close.
func (r *Recorder) drain() {
	defer close(r.done)
	for {
		select {
		case t := <-r.ch:
			r.append(t)
		case reply := <-r.syncCh:
			// Serviced on this goroutine so the backlog sweep and the
			// writer flush never race an append.
			r.drainBacklog()
			if err := r.Err(); err != nil {
				reply <- err
			} else {
				reply <- r.w.Flush()
			}
		case <-r.quit:
			// Drain whatever the taps managed to buffer before Close.
			r.drainBacklog()
			return
		}
	}
}

// drainBacklog empties the tap buffer into the writer without blocking.
func (r *Recorder) drainBacklog() {
	for {
		select {
		case t := <-r.ch:
			r.append(t)
		default:
			return
		}
	}
}

// Sync drains the tap backlog and flushes the writer, so that every tuple
// tapped so far becomes visible to a store.Reader. Call it only once the
// session feeding the tap is quiescent (sealed and flushed, as during a
// migration) — with a producer still running there is no meaningful "all
// tuples" to sync. Returns the first writer error, if any.
func (r *Recorder) Sync() error {
	reply := make(chan error, 1)
	select {
	case r.syncCh <- reply:
		return <-reply
	case <-r.done:
		return fmt.Errorf("store: recorder for %q is closed", r.Stream())
	}
}

func (r *Recorder) append(t stream.Tuple) {
	if r.err.Load() != nil {
		r.dropped.Add(1)
		return
	}
	if err := r.w.Append(t); err != nil {
		r.err.Store(errBox{err})
		r.dropped.Add(1)
		return
	}
	r.recorded.Add(1)
}

// Recorded returns the number of tuples handed to the writer.
func (r *Recorder) Recorded() uint64 { return r.recorded.Load() }

// Dropped returns the number of tuples lost to a full buffer, a stopped
// recorder or a failed writer.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Err returns the first writer error, if any; once set, the recorder stops
// appending and counts everything as dropped.
func (r *Recorder) Err() error {
	if b, ok := r.err.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// Stream returns the name of the recorded stream.
func (r *Recorder) Stream() string { return r.w.Manifest().Stream }

// Writer exposes the underlying stream writer — its Records/Tuples/Bytes
// counters feed the admin plane's append-throughput gauges.
func (r *Recorder) Writer() *Writer { return r.w }

// Close stops the taps, drains the buffer and closes the writer.
// Idempotent; taps installed on still-live sessions keep working (counting
// drops) after Close.
func (r *Recorder) Close() error {
	r.closeOnce.Do(func() {
		// The write lock waits out in-flight taps, so every tuple that
		// passed a closed-check is in the buffer before quit is signalled
		// and the drain's final sweep picks it up.
		r.tapMu.Lock()
		r.closed.Store(true)
		r.tapMu.Unlock()
		close(r.quit)
		<-r.done
		r.closeErr = r.w.Close()
		if r.closeErr == nil {
			r.closeErr = r.Err()
		}
	})
	return r.closeErr
}

// Archive manages the recordings of a whole server under one root
// directory: one recorded stream per session, with name collisions (e.g.
// a remote client reusing a session ID) resolved by a numeric suffix.
// Safe for concurrent use.
type Archive struct {
	root   string
	opts   Options
	buffer int
	gate   *streamGate // compaction vs. reader serialization, per stream

	mu     sync.Mutex
	open   map[string]*Recorder // by stream name (suffix included)
	byName map[string]*Recorder // by originally requested session name
	origOf map[string]string    // stream name -> originally requested name
	closed bool
}

// NewArchive creates an archive rooted at dir; streams are created lazily
// by Record. buffer <= 0 selects DefaultRecorderBuffer per recorder.
func NewArchive(root string, opts Options, buffer int) *Archive {
	return &Archive{
		root: root, opts: opts, buffer: buffer,
		gate:   newStreamGate(),
		open:   make(map[string]*Recorder),
		byName: make(map[string]*Recorder),
		origOf: make(map[string]string),
	}
}

// Root returns the archive directory.
func (a *Archive) Root() string { return a.root }

// OpenReader opens a recorded stream for reading under the archive's
// compaction gate: the reader holds the stream's read lock until Close, so
// a concurrent compaction pass (Archive.NewCompactor) can never rewrite or
// delete the stream's files while it is being read. Prefer this over the
// package-level OpenReader whenever the archive has a compactor attached.
func (a *Archive) OpenReader(name string) (*Reader, error) {
	lock := a.gate.of(name)
	lock.RLock()
	r, err := OpenReader(a.root, name)
	if err != nil {
		lock.RUnlock()
		return nil, err
	}
	r.unlock = lock.RUnlock
	return r, nil
}

// Record creates a fresh recorded stream for the given session and returns
// its recorder. If a stream of that name already exists (an earlier run,
// or a reused session ID), ".2", ".3", … suffixes are tried.
func (a *Archive) Record(name string, schema *stream.Schema) (*Recorder, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, fmt.Errorf("store: archive %s is closed", a.root)
	}
	candidate := name
	for n := 2; ; n++ {
		_, inUse := a.open[candidate]
		if !inUse && !Exists(a.root, candidate) {
			break
		}
		candidate = fmt.Sprintf("%s.%d", name, n)
	}
	w, err := Create(a.root, candidate, schema, a.opts)
	if err != nil {
		return nil, err
	}
	rec := NewRecorder(w, a.buffer)
	a.open[candidate] = rec
	a.byName[name] = rec
	a.origOf[candidate] = name
	return rec, nil
}

// LiveRecorder returns the open recorder serving the given session name,
// resolving any collision suffix the archive chose for the stream — the
// lookup a migration uses to find a live session's recorded history. ok is
// false when no recording is open for that session.
func (a *Archive) LiveRecorder(name string) (*Recorder, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.byName[name]
	return rec, ok
}

// forget drops one recorder from every index. Callers hold a.mu.
func (a *Archive) forget(rec *Recorder) {
	name := rec.Stream()
	delete(a.open, name)
	if orig, ok := a.origOf[name]; ok {
		delete(a.origOf, name)
		if a.byName[orig] == rec {
			delete(a.byName, orig)
		}
	}
}

// Release closes one recorder and forgets it. Called when its session
// ends; Close handles any recorder not released by then.
func (a *Archive) Release(rec *Recorder) error {
	a.mu.Lock()
	a.forget(rec)
	a.mu.Unlock()
	return rec.Close()
}

// Abort closes one recorder and deletes its recording entirely — for
// streams whose session never came to life (e.g. a failed attach), so
// retries do not litter the archive with empty streams and burn ID
// suffixes.
func (a *Archive) Abort(rec *Recorder) error {
	a.mu.Lock()
	a.forget(rec)
	a.mu.Unlock()
	closeErr := rec.Close()
	if err := os.RemoveAll(rec.w.Dir()); err != nil {
		return err
	}
	return closeErr
}

// Streams returns the names of recordings currently open.
func (a *Archive) Streams() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.open))
	for name := range a.open {
		out = append(out, name)
	}
	return out
}

// Close closes every recorder still open. The archive directory remains
// readable with OpenReader/ListStreams.
func (a *Archive) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	recs := make([]*Recorder, 0, len(a.open))
	for name, rec := range a.open {
		recs = append(recs, rec)
		delete(a.open, name)
	}
	a.byName = make(map[string]*Recorder)
	a.origOf = make(map[string]string)
	a.mu.Unlock()
	var first error
	for _, rec := range recs {
		if err := rec.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
