package store

import (
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
)

// benchTuples synthesizes kinect-width tuples (45 fields, 30 Hz spacing).
func benchTuples(n int) []stream.Tuple {
	schema := kinect.Schema()
	base := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, n)
	for i := range out {
		fs := make([]float64, schema.Len())
		for j := range fs {
			fs[j] = float64((i+j)%100) * 0.01
		}
		out[i] = stream.Tuple{Ts: base.Add(time.Duration(i) * 33 * time.Millisecond), Seq: uint64(i), Fields: fs}
	}
	return out
}

// benchDir returns a bench working directory on an in-memory filesystem
// when one is available (/dev/shm on Linux), falling back to b.TempDir().
//
// Writing to real disk made the committed RecordAppend number a measurement
// of the host, not the code: a short run is absorbed by the page cache
// (~1.0 GB/s apparent), while a sustained run is throttled by kernel
// writeback to device bandwidth (~90 MB/s apparent) — same binary, an 11×
// spread purely from run duration. tmpfs removes the device from the loop,
// so the number tracks the append path itself: encode, CRC framing,
// buffering, segment rolls.
func benchDir(b *testing.B) string {
	const shm = "/dev/shm"
	if fi, err := os.Stat(shm); err == nil && fi.IsDir() {
		dir, err := os.MkdirTemp(shm, "storebench-")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// BenchmarkRecordAppend measures the append path (buffered records, CRC
// framing, segment rolls) at kinect tuple width, on an in-memory filesystem
// so the result is not a function of host disk writeback (see benchDir).
// The on-filesystem working set is additionally bounded by recreating the
// stream every resetEvery tuples (outside the timer): without the bound,
// a long run accumulates gigabytes of segments and the apparent MB/s decays
// with b.N — the committed number would depend on the bench duration, not
// the code.
func BenchmarkRecordAppend(b *testing.B) {
	// ~376 MB of segments between resets at kinect width.
	const resetEvery = 1 << 20
	tuples := benchTuples(4096)
	dir := benchDir(b)
	w, err := Create(dir, "bench", kinect.Schema(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { w.Close() }()
	bytesPerTuple := int64(tupleBytes(kinect.Schema().Len()))
	b.SetBytes(bytesPerTuple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%resetEvery == 0 {
			b.StopTimer()
			if err := w.Close(); err != nil {
				b.Fatal(err)
			}
			if err := os.RemoveAll(dir); err != nil {
				b.Fatal(err)
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				b.Fatal(err)
			}
			if w, err = Create(dir, "bench", kinect.Schema(), Options{}); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := w.Append(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSeek measures positioning a reader deep into a many-segment
// stream — the sparse-index path (segment binary search + sidecar lookup +
// bounded residual scan) against the full decode-and-skip scan it replaces.
// Each iteration opens a fresh reader and seeks to a pseudo-random late
// offset, then reads one record to prove the position is live.
func BenchmarkSeek(b *testing.B) {
	root := benchDir(b)
	const n = 1 << 16
	tuples := benchTuples(n)
	w, err := Create(root, "bench", kinect.Schema(), Options{SegmentBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := range tuples {
		if err := w.Append(tuples[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := OpenReader(root, "bench")
				if err != nil {
					b.Fatal(err)
				}
				if !mode.indexed {
					// Forget sidecars without touching disk: mark every
					// segment's index lookup as already failed.
					for s := range r.segs {
						m, err := r.metaAt(s)
						if err != nil {
							b.Fatal(err)
						}
						m.idx, m.idxTried = nil, true
					}
				}
				off := uint64(n/2 + (i*4973)%(n/2)) // late, varying offsets
				rem, err := r.SeekTuple(off)
				if err != nil {
					b.Fatal(err)
				}
				// Skip the residual the way Replay does, then deliver one
				// tuple to prove the position is live. Indexed: residual is
				// under one index stride. Scan: residual is the whole offset.
				delivered := false
				for !delivered {
					got, err := r.Next()
					if err != nil {
						b.Fatal(err)
					}
					if rem >= uint64(len(got)) {
						rem -= uint64(len(got))
						continue
					}
					delivered = true
				}
				r.Close()
			}
		})
	}
}

// BenchmarkReplayThroughput measures the read path: segment decode, CRC
// verification and tuple delivery into a no-op sink.
func BenchmarkReplayThroughput(b *testing.B) {
	root := benchDir(b)
	const n = 8192
	tuples := benchTuples(n)
	w, err := Create(root, "bench", kinect.Schema(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := range tuples {
		if err := w.Append(tuples[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n) * int64(tupleBytes(kinect.Schema().Len())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenReader(root, "bench")
		if err != nil {
			b.Fatal(err)
		}
		var got uint64
		for {
			tuples, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			got += uint64(len(tuples))
		}
		r.Close()
		if got != n {
			b.Fatal(fmt.Errorf("read %d tuples, want %d", got, n))
		}
	}
}
