package store

import (
	"fmt"
	"io"
	"testing"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
)

// benchTuples synthesizes kinect-width tuples (45 fields, 30 Hz spacing).
func benchTuples(n int) []stream.Tuple {
	schema := kinect.Schema()
	base := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, n)
	for i := range out {
		fs := make([]float64, schema.Len())
		for j := range fs {
			fs[j] = float64((i+j)%100) * 0.01
		}
		out[i] = stream.Tuple{Ts: base.Add(time.Duration(i) * 33 * time.Millisecond), Seq: uint64(i), Fields: fs}
	}
	return out
}

// BenchmarkRecordAppend measures the disk-side append path (buffered
// records, CRC framing, segment rolls) at kinect tuple width.
func BenchmarkRecordAppend(b *testing.B) {
	tuples := benchTuples(4096)
	w, err := Create(b.TempDir(), "bench", kinect.Schema(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	bytesPerTuple := int64(tupleBytes(kinect.Schema().Len()))
	b.SetBytes(bytesPerTuple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplayThroughput measures the read path: segment decode, CRC
// verification and tuple delivery into a no-op sink.
func BenchmarkReplayThroughput(b *testing.B) {
	root := b.TempDir()
	const n = 8192
	tuples := benchTuples(n)
	w, err := Create(root, "bench", kinect.Schema(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := range tuples {
		if err := w.Append(tuples[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(n) * int64(tupleBytes(kinect.Schema().Len())))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := OpenReader(root, "bench")
		if err != nil {
			b.Fatal(err)
		}
		var got uint64
		for {
			tuples, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			got += uint64(len(tuples))
		}
		r.Close()
		if got != n {
			b.Fatal(fmt.Errorf("read %d tuples, want %d", got, n))
		}
	}
}
