package store_test

import (
	"bytes"
	"testing"

	"gesturecep/internal/e2e"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
	"gesturecep/internal/wire"
)

// TestRecordOverWire runs the full production recording path through the
// shared harness: a backend with a recording archive, a remote client
// feeding frames over the wire, and a replay of the recorded stream that
// must reproduce the remote session's detections byte for byte.
func TestRecordOverWire(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 11)
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 2}, Record: true})

	cl := h.Dial()
	// A failed attach (unknown plan) must not leave an empty recording
	// behind, and must not burn the session's stream name.
	if _, err := cl.Attach("remote-1", wire.AttachOptions{Gestures: []string{"nope"}}); err == nil {
		t.Fatal("attach with an unknown plan succeeded")
	}
	if h.HasRecording(0, "remote-1") {
		t.Fatal("failed attach littered the archive with an empty stream")
	}

	rs, err := cl.Attach("remote-1", wire.AttachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	remote := rs.Detections()
	if len(remote) == 0 {
		t.Fatal("remote session detected nothing")
	}
	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	h.Stop() // flush the archive; the registry survives for the replay

	// The recorded stream holds exactly what the server admitted; replay
	// through a fresh manager must reproduce the remote detections.
	m, err := serve.NewManager(serve.Config{Shards: 2}, h.Registry)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess, err := m.CreateSession("replay-remote")
	if err != nil {
		t.Fatal(err)
	}
	r, err := store.OpenReader(h.RecordRoot(0), "remote-1")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := store.ReplayToSession(r, sess, store.ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	replayed := sess.Detections()
	if !bytes.Equal(e2e.EncodeDets(t, remote), e2e.EncodeDets(t, replayed)) {
		t.Errorf("replay of wire recording diverges:\nremote: %+v\nreplay: %+v", remote, replayed)
	}
}
