package store

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// TestReplayPacingAnchorsAtFirstDelivery pins the pacing bugfix: time
// spent positioning at Offset (seek plus skip scan) must not eat the
// schedule. The hook simulates a 200ms skip phase; the replayed window
// covers ~300ms of event time at 4x speed (~74ms of wall time), so the
// old entry-anchored clock — already 200ms in arrears — would deliver the
// whole window in a burst.
func TestReplayPacingAnchorsAtFirstDelivery(t *testing.T) {
	root := t.TempDir()
	const n = 30
	tuples := buildStream(t, root, "s", n, Options{BatchTuples: 4})

	testHookReplayPositioned = func() { time.Sleep(200 * time.Millisecond) }
	defer func() { testHookReplayPositioned = nil }()

	r, err := OpenReader(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const off = 20
	var firstAt, lastAt time.Time
	stats, err := Replay(r, func(stream.Tuple) error {
		now := time.Now()
		if firstAt.IsZero() {
			firstAt = now
		}
		lastAt = now
		return nil
	}, ReplayOptions{Offset: off, Speed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != n-off {
		t.Fatalf("delivered %d tuples, want %d", stats.Tuples, n-off)
	}
	wantSpan := tuples[n-1].Ts.Sub(tuples[off].Ts) / 4
	if got := lastAt.Sub(firstAt); got < wantSpan/2 {
		t.Fatalf("paced window took %v wall time, want >= %v — pacing clock was anchored before the skip phase", got, wantSpan/2)
	}
}

// TestReplayStatsFinalizedOnError pins the stats bugfix: a replay aborted
// by a sink error must still report its duration and the event span it
// covered instead of zeros.
func TestReplayStatsFinalizedOnError(t *testing.T) {
	root := t.TempDir()
	buildStream(t, root, "s", 40, Options{BatchTuples: 4})

	r, err := OpenReader(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	boom := errors.New("sink exploded")
	seen := 0
	stats, err := Replay(r, func(stream.Tuple) error {
		seen++
		if seen == 10 {
			return boom
		}
		return nil
	}, ReplayOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay error = %v, want the sink error", err)
	}
	if stats.Tuples != 9 {
		// The aborted delivery itself is not counted.
		t.Fatalf("stats.Tuples = %d, want 9", stats.Tuples)
	}
	if stats.Duration <= 0 {
		t.Fatal("stats.Duration not finalized on sink error")
	}
	if stats.EventSpan <= 0 {
		t.Fatal("stats.EventSpan not finalized on sink error")
	}
}

// TestReplayLimitCountsOnlyFullRecords pins the record-counting bugfix: a
// record the Limit cuts mid-way is not a delivered record.
func TestReplayLimitCountsOnlyFullRecords(t *testing.T) {
	root := t.TempDir()
	buildStream(t, root, "s", 30, Options{BatchTuples: 10})

	for _, tc := range []struct {
		limit       uint64
		wantRecords uint64
	}{
		{limit: 15, wantRecords: 1}, // cut lands mid-record: 1 full + 1 partial
		{limit: 20, wantRecords: 2}, // cut lands exactly on a record boundary
		{limit: 0, wantRecords: 3},  // unlimited: all records
	} {
		r, err := OpenReader(root, "s")
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Replay(r, func(stream.Tuple) error { return nil }, ReplayOptions{Limit: tc.limit})
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		wantTuples := tc.limit
		if wantTuples == 0 {
			wantTuples = 30
		}
		if stats.Tuples != wantTuples {
			t.Fatalf("Limit=%d: Tuples = %d, want %d", tc.limit, stats.Tuples, wantTuples)
		}
		if stats.Records != tc.wantRecords {
			t.Fatalf("Limit=%d: Records = %d, want %d", tc.limit, stats.Records, tc.wantRecords)
		}
	}
}

// TestWriterStickyFailAfterRollError pins the writer bugfix: a failed
// segment roll (here: the next segment path is unexpectedly a directory)
// must poison the writer — every later Append/Flush/Close surfaces the
// fault instead of silently buffering into the sealed previous segment —
// while everything sealed before the fault stays readable.
func TestWriterStickyFailAfterRollError(t *testing.T) {
	root := t.TempDir()
	w, err := Create(root, "s", synthSchema, Options{SegmentBytes: 512, BatchTuples: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Squat on the path openSegment will want for segment 2.
	if err := os.MkdirAll(segmentPath(w.Dir(), 2), 0o755); err != nil {
		t.Fatal(err)
	}

	tuples := synthTuples(400)
	var rollErr error
	appended := 0
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			rollErr = err
			break
		}
		appended++
	}
	if rollErr == nil {
		t.Fatal("no roll error after 400 appends into 512-byte segments")
	}
	if !strings.Contains(rollErr.Error(), "segment roll failed") {
		t.Fatalf("roll error = %v, want a segment-roll failure", rollErr)
	}

	// Sticky: every later call surfaces the same fault.
	for name, call := range map[string]func() error{
		"Append": func() error { return w.Append(tuples[0]) },
		"Flush":  w.Flush,
		"Close":  w.Close,
	} {
		if err := call(); !errors.Is(err, rollErr) {
			t.Fatalf("%s after failed roll = %v, want the sticky roll error", name, err)
		}
	}

	// The sealed history before the fault is intact: the roll sealed
	// segment 1 cleanly, so every record written before the fault reads
	// back. (The Append that tripped the roll wrote its record before the
	// roll ran, so its tuple is durable despite the error.)
	os.Remove(segmentPath(w.Dir(), 2)) // clear the squatter so the stream lists cleanly
	got, err := ReadAll(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > appended+1 {
		t.Fatalf("read back %d tuples after fault, want 1..%d", len(got), appended+1)
	}
	tuplesEqual(t, got, tuples[:len(got)])
}
