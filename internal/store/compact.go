package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/obs"
	"gesturecep/internal/wire"
)

// Retention + compaction. A compaction run walks an archive root and
// reclaims expired history three ways, cheapest first: streams whose
// entire event-time span precedes the cutoff are deleted wholesale; fully
// expired segments are dropped off the front of a stream (never the
// middle — the record-ordinal chain must stay contiguous); and the
// now-oldest segment is rewritten without its expired prefix records. A
// rewrite re-encodes the kept records verbatim (the codec is canonical, so
// bytes are preserved exactly), writes segment-then-sidecar under .tmp
// names and renames the segment before the sidecar — a crash between the
// two leaves a sidecar whose baseRecord disagrees with the new header,
// which readers detect and ignore.
//
// The read-lock protocol (the oidadb job-scheduled access pattern): every
// stream has a gate RWMutex owned by the Archive. Readers opened through
// Archive.OpenReader hold the read side for their whole lifetime; the
// compactor takes the write side per stream, so a live Reader never
// observes a half-rewritten stream and the compactor never deletes files
// out from under one. Streams with a live Recorder are skipped entirely —
// the writer owns the tail and fresh data is by definition unexpired.

// RetentionPolicy says what a compaction run may discard.
type RetentionPolicy struct {
	// MaxAge drops recorded data whose event time ended more than MaxAge
	// before the run's reference time. Zero retains everything (a run is
	// then a no-op). An empty stream's age is its creation time.
	MaxAge time.Duration
}

// CompactStats is one compaction run's outcome.
type CompactStats struct {
	Streams           int   // streams examined
	StreamsSkipped    int   // left alone: live recorder attached
	StreamsDropped    int   // deleted wholesale (entirely expired)
	SegmentsDropped   int   // whole segments dropped off stream fronts
	SegmentsRewritten int   // head segments rewritten without expired prefixes
	BytesReclaimed    int64 // disk bytes freed
}

// streamGate hands out the per-stream RWMutex compaction and archive
// readers synchronize on.
type streamGate struct {
	mu    sync.Mutex
	locks map[string]*sync.RWMutex
}

func newStreamGate() *streamGate {
	return &streamGate{locks: make(map[string]*sync.RWMutex)}
}

func (g *streamGate) of(stream string) *sync.RWMutex {
	g.mu.Lock()
	defer g.mu.Unlock()
	l := g.locks[stream]
	if l == nil {
		l = &sync.RWMutex{}
		g.locks[stream] = l
	}
	return l
}

// Compactor applies a RetentionPolicy to an archive root, either on
// demand (Run) or on a schedule (Start). Safe for concurrent use with
// readers opened through the owning Archive; counters are cumulative
// across runs and exported to the admin plane via WriteProm.
type Compactor struct {
	root string
	pol  RetentionPolicy
	gate *streamGate
	skip func(stream string) bool // live-recorder check; nil skips nothing

	runs              atomic.Uint64
	failures          atomic.Uint64
	streamsDropped    atomic.Uint64
	segmentsDropped   atomic.Uint64
	segmentsRewritten atomic.Uint64
	bytesReclaimed    atomic.Uint64
	dur               *obs.Histogram
}

// NewCompactor builds a standalone compactor for an archive root nothing
// is writing to (offline retention). For an archive with live recorders
// and readers use Archive.NewCompactor, which shares the archive's gate.
func NewCompactor(root string, pol RetentionPolicy) *Compactor {
	return &Compactor{root: root, pol: pol, gate: newStreamGate(), dur: obs.NewHistogram()}
}

// NewCompactor builds a compactor wired to this archive: it serializes
// against readers opened through Archive.OpenReader and skips streams
// with a live recorder.
func (a *Archive) NewCompactor(pol RetentionPolicy) *Compactor {
	return &Compactor{
		root: a.root,
		pol:  pol,
		gate: a.gate,
		skip: func(stream string) bool {
			a.mu.Lock()
			defer a.mu.Unlock()
			_, live := a.open[stream]
			return live
		},
		dur: obs.NewHistogram(),
	}
}

// Run executes one compaction pass with now as the reference time. Per-
// stream failures do not stop the pass; they are joined into the returned
// error after every stream has been visited.
func (c *Compactor) Run(now time.Time) (CompactStats, error) {
	start := time.Now()
	c.runs.Add(1)
	var stats CompactStats
	var errs []error
	defer func() {
		c.streamsDropped.Add(uint64(stats.StreamsDropped))
		c.segmentsDropped.Add(uint64(stats.SegmentsDropped))
		c.segmentsRewritten.Add(uint64(stats.SegmentsRewritten))
		c.bytesReclaimed.Add(uint64(stats.BytesReclaimed))
		c.failures.Add(uint64(len(errs)))
		c.dur.ObserveSince(start)
	}()
	if c.pol.MaxAge <= 0 {
		return stats, nil
	}
	cutoffNs := now.Add(-c.pol.MaxAge).UnixNano()
	streams, err := ListStreams(c.root)
	if err != nil {
		return stats, err
	}
	for _, name := range streams {
		stats.Streams++
		if c.skip != nil && c.skip(name) {
			stats.StreamsSkipped++
			continue
		}
		lock := c.gate.of(name)
		lock.Lock()
		err := compactStream(StreamDir(c.root, name), cutoffNs, &stats)
		lock.Unlock()
		if err != nil {
			errs = append(errs, fmt.Errorf("stream %q: %w", name, err))
		}
	}
	return stats, errors.Join(errs...)
}

// Start runs compaction passes every interval until the returned stop
// function is called. Pass errors are reported through onErr (nil ignores
// them).
func (c *Compactor) Start(interval time.Duration, onErr func(error)) (stop func()) {
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if _, err := c.Run(time.Now()); err != nil && onErr != nil {
					onErr(err)
				}
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

// CompactorStats is the cumulative counter snapshot for the admin plane.
type CompactorStats struct {
	Runs              uint64        `json:"runs"`
	Failures          uint64        `json:"failures"`
	StreamsDropped    uint64        `json:"streams_dropped"`
	SegmentsDropped   uint64        `json:"segments_dropped"`
	SegmentsRewritten uint64        `json:"segments_rewritten"`
	BytesReclaimed    uint64        `json:"bytes_reclaimed"`
	Duration          obs.HistStats `json:"duration"`
}

// Stats snapshots the cumulative counters.
func (c *Compactor) Stats() CompactorStats {
	return CompactorStats{
		Runs:              c.runs.Load(),
		Failures:          c.failures.Load(),
		StreamsDropped:    c.streamsDropped.Load(),
		SegmentsDropped:   c.segmentsDropped.Load(),
		SegmentsRewritten: c.segmentsRewritten.Load(),
		BytesReclaimed:    c.bytesReclaimed.Load(),
		Duration:          c.dur.Snapshot().Stats(),
	}
}

// WriteProm emits the compactor's counters and duration histogram in
// Prometheus exposition format — the admin plane's Collect hook.
func (c *Compactor) WriteProm(w *obs.PromWriter) {
	w.Counter("store_compact_runs_total", "Compaction passes executed.", nil, c.runs.Load())
	w.Counter("store_compact_failures_total", "Per-stream compaction failures.", nil, c.failures.Load())
	w.Counter("store_compact_streams_dropped_total", "Entirely expired streams deleted.", nil, c.streamsDropped.Load())
	w.Counter("store_compact_segments_dropped_total", "Whole expired segments dropped.", nil, c.segmentsDropped.Load())
	w.Counter("store_compact_segments_rewritten_total", "Head segments rewritten without expired prefixes.", nil, c.segmentsRewritten.Load())
	w.Counter("store_compact_bytes_reclaimed_total", "Disk bytes freed by compaction.", nil, c.bytesReclaimed.Load())
	w.Histogram("store_compact_seconds", "Compaction pass duration.", nil, c.dur.Snapshot())
}

// segSpan reads one segment's event-time span and sizes, preferring the
// sidecar and scanning without one.
type segSpan struct {
	lastTsNs int64
	records  uint64
	bytes    int64
	idx      *segIndex // nil when scanned
}

func spanOf(dir string, index int) (segSpan, error) {
	var sp segSpan
	if st, err := os.Stat(segmentPath(dir, index)); err == nil {
		sp.bytes = st.Size()
	}
	if ix, err := readSidecar(sidecarPath(dir, index)); err == nil {
		sp.lastTsNs, sp.records, sp.idx = ix.lastTsNs, ix.records, ix
		return sp, nil
	}
	scan, headerOK, err := scanSegment(segmentPath(dir, index), 0)
	if err != nil {
		return sp, err
	}
	if !headerOK {
		// Torn before the header: recovery discards it; treat as empty.
		return sp, nil
	}
	sp.lastTsNs, sp.records = scan.lastTsNs, scan.records
	return sp, nil
}

// compactStream applies the cutoff to one stream. The caller holds the
// stream's gate write lock.
func compactStream(dir string, cutoffNs int64, stats *CompactStats) error {
	man, err := readManifest(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // deleted between listing and locking
		}
		return err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	spans := make([]segSpan, len(segs))
	var lastNs int64
	var totalRecords uint64
	var total int64
	for i, index := range segs {
		if spans[i], err = spanOf(dir, index); err != nil {
			return err
		}
		if spans[i].lastTsNs > lastNs {
			lastNs = spans[i].lastTsNs
		}
		totalRecords += spans[i].records
		total += spans[i].bytes
	}
	if totalRecords == 0 {
		lastNs = man.CreatedUnixNs // empty streams age from creation
	}
	if lastNs < cutoffNs {
		// The whole stream — newest tuple included — predates the cutoff.
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		stats.StreamsDropped++
		stats.BytesReclaimed += total
		return nil
	}
	// Drop fully expired segments off the front; the final segment is
	// never dropped here (the stream as a whole is not expired, and the
	// tail is where a writer would resume).
	drop := 0
	for drop < len(segs)-1 && spans[drop].records > 0 && spans[drop].lastTsNs < cutoffNs {
		drop++
	}
	for i := 0; i < drop; i++ {
		if err := os.Remove(segmentPath(dir, segs[i])); err != nil {
			return err
		}
		os.Remove(sidecarPath(dir, segs[i]))
		stats.SegmentsDropped++
		stats.BytesReclaimed += spans[i].bytes
	}
	segs, spans = segs[drop:], spans[drop:]
	// Rewrite the head segment without its expired prefix records — only
	// a sealed, indexed head that is not the active tail, and only when
	// there is actually something to drop.
	if len(segs) < 2 || spans[0].idx == nil || spans[0].idx.firstTsNs >= cutoffNs {
		return nil
	}
	reclaimed, rewrote, err := rewriteHead(dir, segs[0], spans[0].idx, cutoffNs)
	if err != nil {
		return err
	}
	if rewrote {
		stats.SegmentsRewritten++
		stats.BytesReclaimed += reclaimed
	}
	return nil
}

// rewriteHead rewrites one sealed segment dropping the leading records
// whose every tuple predates the cutoff. Kept records are re-encoded
// through the canonical codec — byte-identical to the originals — into
// segment-and-sidecar .tmp files renamed into place, segment first.
func rewriteHead(dir string, index int, ix *segIndex, cutoffNs int64) (reclaimed int64, rewrote bool, err error) {
	path := segmentPath(dir, index)
	in, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer in.Close()
	sr, err := newSegmentReader(in)
	if err != nil {
		return 0, false, err
	}
	var (
		dropRecords uint64
		dropTuples  uint64
	)
	// Buffer kept records' re-encoded payloads while streaming through the
	// file once; a sealed segment is bounded by Options.SegmentBytes, so
	// holding its live suffix in memory is fine.
	var kept [][]byte
	var keptTuples []struct {
		count   int
		firstNs int64
		maxNs   int64
	}
	inPrefix := true
	for {
		b, rerr := sr.Next()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return 0, false, rerr
		}
		maxNs := int64(0)
		for i := range b.Tuples {
			if ns := b.Tuples[i].Ts.UnixNano(); ns > maxNs {
				maxNs = ns
			}
		}
		if inPrefix && maxNs < cutoffNs {
			dropRecords++
			dropTuples += uint64(len(b.Tuples))
			continue
		}
		inPrefix = false
		payload, perr := wire.AppendBatch(nil, b.Handle, b.Fields, b.Tuples)
		if perr != nil {
			return 0, false, perr
		}
		kept = append(kept, payload)
		firstNs := int64(0)
		if len(b.Tuples) > 0 {
			firstNs = b.Tuples[0].Ts.UnixNano()
		}
		keptTuples = append(keptTuples, struct {
			count   int
			firstNs int64
			maxNs   int64
		}{len(b.Tuples), firstNs, maxNs})
	}
	if dropRecords == 0 {
		return 0, false, nil
	}
	newBase := ix.baseRecord + dropRecords
	newBaseTuple := ix.baseTuple + dropTuples
	out := &segIndex{
		every:      ix.every,
		baseRecord: newBase,
		baseTuple:  newBaseTuple,
		records:    ix.records - dropRecords,
		tuples:     ix.tuples - dropTuples,
	}
	tmpSeg := path + ".tmp"
	f, err := os.OpenFile(tmpSeg, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, false, err
	}
	hdr := encodeSegHeader(segHeader{fields: sr.hdr.fields, baseRecord: newBase})
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(tmpSeg)
		return 0, false, err
	}
	off := int64(segHeaderBytes)
	tupleOrd := newBaseTuple
	for i, payload := range kept {
		if uint64(i)%uint64(ix.every) == 0 {
			out.entries = append(out.entries, idxEntry{
				tupleOrd: tupleOrd,
				tsNs:     keptTuples[i].firstNs,
				offset:   off,
			})
		}
		if out.firstTsNs == 0 {
			out.firstTsNs = keptTuples[i].firstNs
		}
		if keptTuples[i].maxNs > out.lastTsNs {
			out.lastTsNs = keptTuples[i].maxNs
		}
		var rh [recHeaderBytes]byte
		binary.BigEndian.PutUint32(rh[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(rh[4:8], crc32.ChecksumIEEE(payload))
		if _, err := f.Write(rh[:]); err != nil {
			f.Close()
			os.Remove(tmpSeg)
			return 0, false, err
		}
		if _, err := f.Write(payload); err != nil {
			f.Close()
			os.Remove(tmpSeg)
			return 0, false, err
		}
		off += recHeaderBytes + int64(len(payload))
		tupleOrd += uint64(keptTuples[i].count)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmpSeg)
		return 0, false, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmpSeg)
		return 0, false, err
	}
	var oldSize int64
	if st, err := os.Stat(path); err == nil {
		oldSize = st.Size()
	}
	// Segment first, sidecar second: a crash in between leaves a sidecar
	// whose baseRecord no longer matches the header, which readers ignore.
	if err := os.Rename(tmpSeg, path); err != nil {
		os.Remove(tmpSeg)
		return 0, false, err
	}
	if err := writeSidecar(sidecarPath(dir, index), out); err != nil {
		return 0, false, err
	}
	return oldSize - off, true, nil
}
