package store

import (
	"errors"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// writeStream records an explicit tuple slice (buildStream always starts
// at the synthetic epoch; retention tests need streams whose histories
// start mid-timeline).
func writeStream(t testing.TB, root, name string, tuples []stream.Tuple, opts Options) {
	t.Helper()
	w, err := Create(root, name, synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactionRetention pins the three reclaim paths of one pass — whole
// streams, whole front segments, and the head segment's expired prefix —
// and that what survives is exactly the records whose newest tuple is at
// or past the cutoff, still readable with an intact ordinal chain.
func TestCompactionRetention(t *testing.T) {
	root := t.TempDir()
	all := synthTuples(200)
	writeStream(t, root, "old", all[:100], smallSegOpts)   // entirely expired
	writeStream(t, root, "mixed", all, smallSegOpts)       // expired head, live tail
	writeStream(t, root, "fresh", all[150:], smallSegOpts) // entirely retained

	// Pick a cutoff strictly inside the first mixed segment that starts
	// past old's whole span — one full record plus one tuple past its base
	// — so the pass must use all three paths on mixed: drop every earlier
	// segment whole, rewrite the head segment's first record away, keep
	// the rest. (Segment bases are record-aligned: records are 4 tuples.)
	dir := StreamDir(root, "mixed")
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 mixed segments, got %d (err %v)", len(segs), err)
	}
	boundary := -1
	for _, seg := range segs {
		ix, err := readSidecar(sidecarPath(dir, seg))
		if err != nil {
			t.Fatal(err)
		}
		if ix.baseTuple >= 104 {
			boundary = int(ix.baseTuple)
			break
		}
	}
	if boundary < 104 || boundary > 140 {
		t.Fatalf("no usable segment base in [104,140], got %d", boundary)
	}
	cutoff := all[boundary+5].Ts

	const maxAge = time.Hour
	c := NewCompactor(root, RetentionPolicy{MaxAge: maxAge})
	stats, err := c.Run(cutoff.Add(maxAge))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Streams != 3 || stats.StreamsDropped != 1 || stats.StreamsSkipped != 0 {
		t.Fatalf("stats = %+v, want 3 streams with 1 dropped", stats)
	}
	if stats.SegmentsDropped < 1 || stats.SegmentsRewritten != 1 {
		t.Fatalf("stats = %+v, want >=1 segment dropped and exactly 1 rewritten", stats)
	}
	if stats.BytesReclaimed <= 0 {
		t.Fatalf("stats.BytesReclaimed = %d, want > 0", stats.BytesReclaimed)
	}
	if Exists(root, "old") {
		t.Fatal("entirely expired stream still exists")
	}

	// mixed: retained = every record whose newest tuple is >= cutoff.
	// Records are 4 tuples; segment two's first record (tuples boundary..
	// boundary+3) expires, its second (max ts = boundary+7 >= boundary+5)
	// survives. ReadAll revalidates CRCs and the ordinal chain end to end.
	got, err := ReadAll(root, "mixed")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, all[boundary+4:])

	// fresh: byte-for-byte untouched.
	got, err = ReadAll(root, "fresh")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, all[150:])

	// Tuple ordinals survive compaction: seeking a global ordinal on the
	// compacted stream still lands on the same tuple.
	r, err := OpenReader(root, "mixed")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	target := uint64(boundary + 14)
	rem, err := r.SeekTuple(target)
	if err != nil {
		t.Fatal(err)
	}
	rest := readFrom(t, r)
	tuplesEqual(t, rest[rem:], all[target:])

	// A second pass at the same cutoff is a no-op.
	stats2, err := c.Run(cutoff.Add(maxAge))
	if err != nil {
		t.Fatal(err)
	}
	if stats2.StreamsDropped+stats2.SegmentsDropped+stats2.SegmentsRewritten != 0 {
		t.Fatalf("second pass reclaimed again: %+v", stats2)
	}
	if s := c.Stats(); s.Runs != 2 || s.SegmentsRewritten != 1 {
		t.Fatalf("cumulative stats = %+v", s)
	}
}

// TestCompactionRacesLiveReadersAndRecorder soaks the read-lock protocol
// under the race detector: an advancing-cutoff compactor progressively
// truncates a long stream while readers continuously re-open and drain
// it through the archive gate, and a live recorder keeps a second stream
// pinned. Every read must observe a consistent suffix of the original
// history — never a half-rewritten stream.
func TestCompactionRacesLiveReadersAndRecorder(t *testing.T) {
	root := t.TempDir()
	arch := NewArchive(root, smallSegOpts, 1<<16)
	const n = 1200
	hist := synthTuples(n)
	writeStream(t, root, "hist", hist, smallSegOpts)

	// The live stream's tuples are just as old as hist's: only the
	// live-recorder skip keeps the compactor off it.
	rec, err := arch.Record("live", synthSchema)
	if err != nil {
		t.Fatal(err)
	}
	tap := rec.Tap()
	for _, tu := range hist[:300] {
		tap(tu)
	}

	const maxAge = time.Hour
	c := arch.NewCompactor(RetentionPolicy{MaxAge: maxAge})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r, err := arch.OpenReader("hist")
				if errors.Is(err, os.ErrNotExist) {
					continue // dropped wholesale near the end of the sweep
				}
				if err != nil {
					t.Error(err)
					return
				}
				var got []stream.Tuple
				for {
					tuples, err := r.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Errorf("mid-compaction read: %v", err)
						break
					}
					got = append(got, tuples...)
				}
				r.Close()
				// Consistency: whatever the compactor had done when this
				// reader acquired the gate, the stream is some exact suffix
				// of the original history. (t.Errorf only — this is not the
				// test goroutine.)
				if len(got) > n {
					t.Errorf("read %d tuples from a %d-tuple history", len(got), n)
					return
				}
				want := hist[n-len(got):]
				for i := range got {
					if !got[i].Ts.Equal(want[i].Ts) || got[i].Seq != want[i].Seq {
						t.Errorf("inconsistent read: tuple %d is seq %d, want %d", i, got[i].Seq, want[i].Seq)
						return
					}
				}
			}
		}()
	}
	// Sweep the cutoff across the whole recorded span, one pass per step.
	for step := 0; step < n+40; step += 40 {
		i := step
		if i >= n {
			i = n - 1
		}
		if _, err := c.Run(hist[i].Ts.Add(maxAge)); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()

	// The live stream was skipped on every pass despite its expired data.
	if s := c.Stats(); s.Failures != 0 {
		t.Fatalf("compactor failures: %+v", s)
	}
	if err := arch.Release(rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(root, "live")
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != rec.Recorded() {
		t.Fatalf("live stream has %d tuples, recorder wrote %d", len(got), rec.Recorded())
	}
	tuplesEqual(t, got, hist[:len(got)])
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
}
