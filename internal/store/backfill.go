package store

import (
	"fmt"
	"io"

	"gesturecep/internal/anduin"
	"gesturecep/internal/transform"
)

// BackfillOptions tunes offline evaluation.
type BackfillOptions struct {
	// Transform configures the kinect_t view the plans read; nil selects
	// transform.DefaultConfig() — the same default a serving session uses,
	// so backfill results line up with live detections.
	Transform *transform.Config
	// OnDetection, when non-nil, streams each detection out as it fires,
	// in order, on the calling goroutine.
	OnDetection func(anduin.Detection)
	// Discard skips collecting detections in the returned slice — set it
	// together with OnDetection when backfilling a history too large to
	// hold its detections in memory.
	Discard bool
}

// Backfill evaluates compiled plans over a recorded history offline: it
// builds a private engine with the standard kinect pipeline, deploys the
// plans, and publishes every recorded tuple through it in order — the
// lambda-style batch path over the same code the live path runs, so a
// plan backfilled over a recorded session produces exactly the detections
// a live session deploying it would have produced.
func Backfill(r *Reader, plans []*anduin.Plan, opts BackfillOptions) ([]anduin.Detection, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("store: backfill needs at least one plan")
	}
	cfg := transform.DefaultConfig()
	if opts.Transform != nil {
		cfg = *opts.Transform
	}
	engine := anduin.New()
	raw, _, err := engine.KinectPipeline(cfg)
	if err != nil {
		return nil, err
	}
	defer engine.UndeployAll()
	if r.Fields() != raw.Schema().Len() {
		return nil, fmt.Errorf("store: stream %q is %d fields wide, the kinect pipeline expects %d",
			r.Manifest().Stream, r.Fields(), raw.Schema().Len())
	}
	var dets []anduin.Detection
	engine.Subscribe(func(d anduin.Detection) {
		if !opts.Discard {
			dets = append(dets, d)
		}
		if opts.OnDetection != nil {
			opts.OnDetection(d)
		}
	})
	for _, p := range plans {
		if _, err := engine.DeployPlan(p); err != nil {
			return nil, err
		}
	}
	for {
		tuples, err := r.Next()
		if err == io.EOF {
			return dets, nil
		}
		if err != nil {
			return dets, err
		}
		for i := range tuples {
			if err := raw.Publish(tuples[i]); err != nil {
				return dets, err
			}
		}
	}
}
