package store

import (
	"fmt"
	"io"
	"sort"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/transform"
)

// BackfillOptions tunes offline evaluation.
type BackfillOptions struct {
	// Transform configures the kinect_t view the plans read; nil selects
	// transform.DefaultConfig() — the same default a serving session uses,
	// so backfill results line up with live detections.
	Transform *transform.Config
	// OnDetection, when non-nil, streams each detection out as it fires,
	// in order, on the calling goroutine.
	OnDetection func(anduin.Detection)
	// Discard skips collecting detections in the returned slice — set it
	// together with OnDetection when backfilling a history too large to
	// hold its detections in memory.
	Discard bool
	// Since and Until bound evaluation to tuples with event time in
	// [Since, Until); zero values leave that side unbounded. Since uses
	// the sparse segment index to open near the window instead of
	// scanning from the start, and evaluation stops at the first record
	// that begins at or past Until — for the record-monotonic streams
	// live recording produces, exactly the window's tuples are evaluated.
	Since, Until time.Time
}

// Backfill evaluates compiled plans over a recorded history offline: it
// builds a private engine with the standard kinect pipeline, deploys the
// plans, and publishes every recorded tuple through it in order — the
// lambda-style batch path over the same code the live path runs, so a
// plan backfilled over a recorded session produces exactly the detections
// a live session deploying it would have produced.
func Backfill(r *Reader, plans []*anduin.Plan, opts BackfillOptions) ([]anduin.Detection, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("store: backfill needs at least one plan")
	}
	cfg := transform.DefaultConfig()
	if opts.Transform != nil {
		cfg = *opts.Transform
	}
	engine := anduin.New()
	raw, _, err := engine.KinectPipeline(cfg)
	if err != nil {
		return nil, err
	}
	defer engine.UndeployAll()
	if r.Fields() != raw.Schema().Len() {
		return nil, fmt.Errorf("store: stream %q is %d fields wide, the kinect pipeline expects %d",
			r.Manifest().Stream, r.Fields(), raw.Schema().Len())
	}
	var dets []anduin.Detection
	engine.Subscribe(func(d anduin.Detection) {
		if !opts.Discard {
			dets = append(dets, d)
		}
		if opts.OnDetection != nil {
			opts.OnDetection(d)
		}
	})
	for _, p := range plans {
		if _, err := engine.DeployPlan(p); err != nil {
			return nil, err
		}
	}
	if !opts.Since.IsZero() {
		if err := r.SeekTime(opts.Since); err != nil {
			return dets, err
		}
	}
	for {
		tuples, err := r.Next()
		if err == io.EOF {
			return dets, nil
		}
		if err != nil {
			return dets, err
		}
		if !opts.Until.IsZero() && len(tuples) > 0 && !tuples[0].Ts.Before(opts.Until) {
			// The record starts at or past the window's end; recorded
			// streams are record-monotonic, so nothing later can precede
			// Until either.
			return dets, nil
		}
		for i := range tuples {
			if !opts.Since.IsZero() && tuples[i].Ts.Before(opts.Since) {
				continue
			}
			if !opts.Until.IsZero() && !tuples[i].Ts.Before(opts.Until) {
				continue
			}
			if err := raw.Publish(tuples[i]); err != nil {
				return dets, err
			}
		}
	}
}

// BackfillStreams evaluates plans over several recorded streams, each in
// its own private engine (streams are independent sessions; their
// histories never interleave), and returns the detections grouped per
// stream in sorted stream-name order. This is the single-node baseline a
// fleet-parallel backfill must merge back to byte for byte: the fleet
// partitions the same sorted stream list across backends, each stream is
// still evaluated by exactly this function's per-stream path, and the
// merge concatenates the groups in the same order.
func BackfillStreams(root string, streams []string, plans []*anduin.Plan, opts BackfillOptions) ([][]anduin.Detection, error) {
	streams = SortStreams(streams)
	out := make([][]anduin.Detection, len(streams))
	for i, name := range streams {
		r, err := OpenReader(root, name)
		if err != nil {
			return nil, fmt.Errorf("store: backfill stream %q: %w", name, err)
		}
		dets, err := Backfill(r, plans, opts)
		r.Close()
		if err != nil {
			return nil, fmt.Errorf("store: backfill stream %q: %w", name, err)
		}
		out[i] = dets
	}
	return out, nil
}

// SortStreams sorts and dedupes a stream-name list in place of the
// caller's slice — the canonical order every backfill (single-node or
// fleet) evaluates and merges in.
func SortStreams(streams []string) []string {
	out := append([]string(nil), streams...)
	sort.Strings(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[j-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}
