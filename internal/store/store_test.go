package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

func testTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

var (
	learnOnce  sync.Once
	learnedTxt string
	learnErr   error
)

// swipeQuery learns swipe_right once per test binary.
func swipeQuery(t testing.TB) string {
	t.Helper()
	learnOnce.Do(func() {
		sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
		if err != nil {
			learnErr = err
			return
		}
		samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 4,
			testTime(), kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			learnErr = err
			return
		}
		res, err := learn.Learn("swipe_right", samples, learn.DefaultConfig())
		if err != nil {
			learnErr = err
			return
		}
		learnedTxt = res.QueryText
	})
	if learnErr != nil {
		t.Fatal(learnErr)
	}
	return learnedTxt
}

// playbackFrames synthesizes a session with two swipes and a distractor.
func playbackFrames(t testing.TB, seed int64) []kinect.Frame {
	t.Helper()
	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: 500 * time.Millisecond},
	}, testTime(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sess.Frames
}

// synthTuples builds deterministic 3-field tuples with UTC timestamps (the
// codec re-stamps times in UTC, so UTC inputs round-trip exactly).
func synthTuples(n int) []stream.Tuple {
	base := testTime()
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = stream.Tuple{
			Ts:     base.Add(time.Duration(i) * 33 * time.Millisecond),
			Seq:    uint64(i + 1),
			Fields: []float64{float64(i), float64(i) * 0.5, -float64(i)},
		}
	}
	return out
}

var synthSchema = stream.MustSchema("a", "b", "c")

func tuplesEqual(t *testing.T, got, want []stream.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if !g.Ts.Equal(w.Ts) || g.Seq != w.Seq || len(g.Fields) != len(w.Fields) {
			t.Fatalf("tuple %d: got %+v, want %+v", i, g, w)
		}
		for j := range g.Fields {
			if g.Fields[j] != w.Fields[j] {
				t.Fatalf("tuple %d field %d: got %v, want %v", i, j, g.Fields[j], w.Fields[j])
			}
		}
	}
}

// TestWriteReadRoundTrip appends across several segment rolls and expects
// ReadAll to return the identical tuple sequence, then resumes the stream
// with Open and appends more.
func TestWriteReadRoundTrip(t *testing.T) {
	root := t.TempDir()
	opts := Options{SegmentBytes: 2048, BatchTuples: 7}
	w, err := Create(root, "s1", synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(500)
	for _, tu := range tuples[:400] {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(StreamDir(root, "s1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments at a 2 KiB roll threshold, got %d", len(segs))
	}

	got, err := ReadAll(root, "s1")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples[:400])

	// Resume and append the rest.
	w2, err := Open(root, "s1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Recovered().Repaired() {
		t.Fatalf("clean stream reported recovery: %+v", w2.Recovered())
	}
	for _, tu := range tuples[400:] {
		if err := w2.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(root, "s1")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples)

	names, err := ListStreams(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "s1" {
		t.Fatalf("ListStreams = %v", names)
	}
}

// lastSegment returns the path of the stream's highest-index segment.
func lastSegment(t *testing.T, root, name string) string {
	t.Helper()
	segs, err := listSegments(StreamDir(root, name))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segmentPath(StreamDir(root, name), segs[len(segs)-1])
}

// TestCrashRecoveryTornTail simulates a crash mid-record-write: the torn
// tail must be detected via CRC, the reader must stop cleanly at the last
// valid record, Open must truncate the tail, and recording must resume
// with the record ordinals intact.
func TestCrashRecoveryTornTail(t *testing.T) {
	root := t.TempDir()
	opts := Options{SegmentBytes: 1 << 20, BatchTuples: 10}
	w, err := Create(root, "crash", synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(100)
	for _, tu := range tuples[:60] {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop 5 bytes off the last record.
	path := lastSegment(t, root, "crash")
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	// The reader must deliver exactly the valid prefix (50 tuples: the
	// torn record held the last 10) and then end cleanly.
	got, err := ReadAll(root, "crash")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples[:50])

	// Open must repair the tail and resume appending.
	w2, err := Open(root, "crash", opts)
	if err != nil {
		t.Fatal(err)
	}
	rec := w2.Recovered()
	if rec.TruncatedBytes == 0 {
		t.Fatal("expected a truncated tail to be reported")
	}
	if got := w2.Records(); got != 5 {
		t.Fatalf("recovered writer at record %d, want 5", got)
	}
	for _, tu := range tuples[50:] {
		if err := w2.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(root, "crash")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples)
}

// TestCrashRecoveryCorruptTail flips a byte inside the last record (same
// size, wrong CRC) and expects the identical repair path.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	root := t.TempDir()
	opts := Options{SegmentBytes: 1 << 20, BatchTuples: 10}
	w, err := Create(root, "flip", synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(40)
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	path := lastSegment(t, root, "flip")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(root, "flip")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples[:30])

	w2, err := Open(root, "flip", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Recovered().Repaired() {
		t.Fatal("expected recovery to repair the corrupt tail record")
	}
	if err := w2.Append(tuples[30]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(root, "flip")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples[:31])
}

// TestMidFileCorruptionIsAnError flips a byte in an early record with
// valid history behind it: the reader must surface an error (never
// silently skip records), and Open must refuse to truncate valid history
// away.
func TestMidFileCorruptionIsAnError(t *testing.T) {
	root := t.TempDir()
	opts := Options{SegmentBytes: 1 << 20, BatchTuples: 10}
	w, err := Create(root, "mid", synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range synthTuples(50) { // 5 records
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := lastSegment(t, root, "mid")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderBytes+recHeaderBytes+20] ^= 0xff // inside record 0's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(root, "mid"); err == nil {
		t.Fatal("reader silently skipped mid-file corruption")
	}
	if _, err := Open(root, "mid", opts); err == nil {
		t.Fatal("Open truncated away valid history behind mid-file corruption")
	}
}

// TestCrashRecoveryZeroFilledTail simulates a crash into preallocated
// (zero-filled) file space: the zeroed region ends the stream cleanly and
// Open repairs it.
func TestCrashRecoveryZeroFilledTail(t *testing.T) {
	root := t.TempDir()
	opts := Options{SegmentBytes: 1 << 20, BatchTuples: 10}
	w, err := Create(root, "zeros", synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(30)
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(lastSegment(t, root, "zeros"), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := ReadAll(root, "zeros")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples)

	w2, err := Open(root, "zeros", opts)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Recovered().TruncatedBytes != 256 {
		t.Fatalf("TruncatedBytes = %d, want 256", w2.Recovered().TruncatedBytes)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryTornHeader covers a crash between sealing a segment and
// writing the next one's header: the unusable tail file is discarded and
// appending resumes on the previous segment.
func TestCrashRecoveryTornHeader(t *testing.T) {
	root := t.TempDir()
	opts := Options{SegmentBytes: 1 << 20, BatchTuples: 10}
	w, err := Create(root, "hdr", synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(20)
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn header: 7 stray bytes where segment 2 should begin.
	torn := segmentPath(StreamDir(root, "hdr"), 2)
	if err := os.WriteFile(torn, []byte("GSEG\x01\x00\x00"), 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(root, "hdr", opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Recovered().RemovedSegments; got != 1 {
		t.Fatalf("RemovedSegments = %d, want 1", got)
	}
	if got := w2.Records(); got != 2 {
		t.Fatalf("recovered writer at record %d, want 2", got)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(root, "hdr")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples)
}

// encodeDets canonicalizes detections to wire bytes for byte-identical
// comparison across code paths.
func encodeDets(t testing.TB, dets []anduin.Detection) []byte {
	t.Helper()
	buf, err := wire.AppendDetections(nil, 0, 0, dets)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestDeterminismRecordReplayBackfill is the acceptance criterion: a live
// served session is recorded through a tap; replaying the recording
// through a fresh serve.Manager session and backfilling the plan over the
// recorded history must both yield byte-identical detections.
func TestDeterminismRecordReplayBackfill(t *testing.T) {
	qtext := swipeQuery(t)
	frames := playbackFrames(t, 7)
	root := t.TempDir()

	reg := serve.NewRegistry()
	if _, err := reg.Register("swipe_right", qtext); err != nil {
		t.Fatal(err)
	}

	// Live run, recorded via the tap. A small segment threshold forces the
	// recording across several segments.
	wtr, err := Create(root, "live", kinect.Schema(), Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(wtr, 0)
	m1, err := serve.NewManager(serve.Config{Shards: 4}, reg)
	if err != nil {
		t.Fatal(err)
	}
	sess1, err := m1.CreateSessionWith("user-1", serve.SessionOptions{Tap: rec.Tap()})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess1.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	sess1.Flush()
	live := sess1.Detections()
	m1.Close()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("live session detected nothing; expected at least one swipe_right")
	}
	if rec.Dropped() != 0 {
		t.Fatalf("recorder dropped %d tuples on an idle test box", rec.Dropped())
	}
	if rec.Recorded() != uint64(len(frames)) {
		t.Fatalf("recorded %d tuples, fed %d frames", rec.Recorded(), len(frames))
	}

	// Replay through a fresh manager session.
	m2, err := serve.NewManager(serve.Config{Shards: 2}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sess2, err := m2.CreateSession("replay-1")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(root, "live")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayToSession(r, sess2, ReplayOptions{})
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tuples != uint64(len(frames)) {
		t.Fatalf("replayed %d tuples, recorded %d", stats.Tuples, len(frames))
	}
	replayed := sess2.Detections()

	// Backfill the same plan over the same history offline.
	plan, _ := reg.Get("swipe_right")
	r2, err := OpenReader(root, "live")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	backfilled, err := Backfill(r2, []*anduin.Plan{plan}, BackfillOptions{})
	if err != nil {
		t.Fatal(err)
	}

	liveB, replayB, backB := encodeDets(t, live), encodeDets(t, replayed), encodeDets(t, backfilled)
	if !bytes.Equal(liveB, replayB) {
		t.Errorf("replayed detections diverge from live run:\nlive:   %+v\nreplay: %+v", live, replayed)
	}
	if !bytes.Equal(liveB, backB) {
		t.Errorf("backfilled detections diverge from live run:\nlive:     %+v\nbackfill: %+v", live, backfilled)
	}
}

// TestRecordOverWire — the full production recording path over the network
// — lives in e2e_test.go on top of the shared internal/e2e harness.

// TestRecorderDropAccounting checks the never-block contract: taps on a
// closed recorder drop (and count) instead of blocking or panicking.
func TestRecorderDropAccounting(t *testing.T) {
	root := t.TempDir()
	w, err := Create(root, "drops", synthSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(w, 8)
	tap := rec.Tap()
	tuples := synthTuples(16)
	for _, tu := range tuples {
		tap(tu)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples {
		tap(tu) // after Close: must not block, must count
	}
	if got := rec.Dropped(); got < uint64(len(tuples)) {
		t.Fatalf("Dropped = %d, want at least %d post-close drops", got, len(tuples))
	}
	if rec.Recorded()+rec.Dropped() != uint64(2*len(tuples)) {
		t.Fatalf("accounting mismatch: recorded %d + dropped %d != tapped %d",
			rec.Recorded(), rec.Dropped(), 2*len(tuples))
	}
	got, err := ReadAll(root, "drops")
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(got)) != rec.Recorded() {
		t.Fatalf("stream holds %d tuples, recorder claims %d", len(got), rec.Recorded())
	}
}

// TestArchiveNameCollision expects a reused session ID to land in a
// suffixed stream rather than clobbering or failing.
func TestArchiveNameCollision(t *testing.T) {
	root := t.TempDir()
	arch := NewArchive(root, Options{}, 0)
	r1, err := arch.Record("user", synthSchema)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := arch.Record("user", synthSchema)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stream() == r2.Stream() {
		t.Fatalf("collision not resolved: both recorders write %q", r1.Stream())
	}
	if err := arch.Release(r1); err != nil {
		t.Fatal(err)
	}
	if err := arch.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := ListStreams(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("ListStreams = %v, want 2 streams", names)
	}
}

// TestHostileStreamNames checks that adversarial session IDs cannot escape
// the archive root.
func TestHostileStreamNames(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"../escape", "a/b", "..", ".", "ü", "x y"} {
		dir := StreamDir(root, name)
		rel, err := filepath.Rel(root, dir)
		if err != nil || rel == ".." || rel == "." || strings.ContainsRune(rel, filepath.Separator) {
			t.Fatalf("name %q maps outside the root: %q", name, dir)
		}
		w, err := Create(root, name, synthSchema, Options{})
		if err != nil {
			t.Fatalf("Create(%q): %v", name, err)
		}
		if err := w.Append(synthTuples(1)[0]); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(root, name)
		if err != nil || len(got) != 1 {
			t.Fatalf("ReadAll(%q): %d tuples, err %v", name, len(got), err)
		}
	}
}

// TestReplayLimitAndPacing exercises the tuple limit and checks that a
// paced replay takes at least roughly the scaled event span.
func TestReplayLimitAndPacing(t *testing.T) {
	root := t.TempDir()
	w, err := Create(root, "pace", synthSchema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(60) // 33 ms apart → ~1.95 s event span
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenReader(root, "pace")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	stats, err := Replay(r, func(stream.Tuple) error { n++; return nil }, ReplayOptions{Limit: 25})
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || stats.Tuples != 25 {
		t.Fatalf("limit ignored: sink saw %d, stats %d", n, stats.Tuples)
	}

	// 20× speed over a ~1.95 s span should take ≥ ~90 ms of wall clock.
	r2, err := OpenReader(root, "pace")
	if err != nil {
		t.Fatal(err)
	}
	stats, err = Replay(r2, func(stream.Tuple) error { return nil }, ReplayOptions{Speed: 20})
	r2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.EventSpan / 20; stats.Duration < want-20*time.Millisecond {
		t.Fatalf("paced replay took %v, want at least about %v", stats.Duration, want)
	}
}
