package store

import (
	"io"
	"time"

	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
)

// ReplayOptions tunes playback speed.
type ReplayOptions struct {
	// Speed scales event time to wall-clock time: 1 replays at the
	// original rate, 2 at double speed, 0 (the default) as fast as the
	// sink accepts. Pacing is drift-free — each tuple is scheduled against
	// the first delivered tuple, not the previous one, so sleep jitter
	// does not accumulate; and the clock anchors at first delivery, so
	// time spent seeking or skipping to Offset never eats the schedule.
	Speed float64
	// Offset skips the first Offset tuples of the recording before any is
	// delivered to the sink. Together with Limit this gives ordinal-bounded
	// replay [Offset, Offset+Limit) — the window a migration catch-up or a
	// resumed backfill reads. The sparse segment index positions the reader
	// near the offset in O(log) where one exists; skipped tuples are not
	// counted, paced or reported either way, and the delivered sequence is
	// byte-identical to a full scan.
	Offset uint64
	// Limit stops the replay after this many tuples (0 = all).
	Limit uint64
	// Progress, when non-nil, is called once per replayed record with the
	// cumulative tuple count — the admin plane's replay-throughput gauge
	// source. Called on the replaying goroutine; keep it fast.
	Progress func(tuples uint64)
}

// ReplayStats reports what a replay delivered. Duration and EventSpan are
// populated on every return path, including sink and reader errors
// mid-replay.
type ReplayStats struct {
	// Records counts fully delivered records: a record Limit cuts short
	// (or that the sink aborted inside) is not counted even though some
	// of its tuples were.
	Records  uint64
	Tuples   uint64
	Duration time.Duration
	// EventSpan is the event-time distance between the first and last
	// replayed tuple.
	EventSpan time.Duration
}

// testHookReplayPositioned, when non-nil, runs after the reader has been
// positioned at Offset and before the first tuple is delivered — it lets
// tests inject a slow skip phase and pin that pacing anchors at first
// delivery rather than at entry.
var testHookReplayPositioned func()

// Replay streams a recorded history into sink in record order. The sink is
// called on the calling goroutine; an error from it aborts the replay.
func Replay(r *Reader, sink func(stream.Tuple) error, opts ReplayOptions) (stats ReplayStats, err error) {
	begin := time.Now()
	var wallStart time.Time // pacing anchor: set when the first tuple is delivered
	var eventStart, eventLast time.Time
	first := true
	defer func() {
		// Finalize on every return path — an aborted replay still reports
		// how long it ran and how much event time it covered.
		stats.Duration = time.Since(begin)
		if !first {
			stats.EventSpan = eventLast.Sub(eventStart)
		}
	}()
	skip := opts.Offset
	if skip > 0 {
		// The sparse index jumps to the nearest record boundary at or
		// before the offset; the remainder is skipped tuple by tuple below.
		rem, serr := r.SeekTuple(skip)
		if serr != nil {
			return stats, serr
		}
		skip = rem
	}
	if testHookReplayPositioned != nil {
		testHookReplayPositioned()
	}
	for {
		tuples, rerr := r.Next()
		if rerr == io.EOF {
			return stats, nil
		}
		if rerr != nil {
			return stats, rerr
		}
		if skip >= uint64(len(tuples)) {
			skip -= uint64(len(tuples))
			continue
		}
		tuples = tuples[skip:]
		skip = 0
		for i := range tuples {
			t := tuples[i]
			if first {
				eventStart, eventLast = t.Ts, t.Ts
				// Anchor pacing here, not at entry: however long the seek
				// or the skip scan took, the first delivered tuple starts
				// the schedule at zero instead of bursting a backlog.
				wallStart = time.Now()
				first = false
			} else if t.Ts.After(eventLast) {
				eventLast = t.Ts
			}
			if opts.Speed > 0 {
				target := wallStart.Add(time.Duration(float64(t.Ts.Sub(eventStart)) / opts.Speed))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
			}
			if err := sink(t); err != nil {
				return stats, err
			}
			stats.Tuples++
			if opts.Limit > 0 && stats.Tuples >= opts.Limit {
				if i == len(tuples)-1 {
					// The limit landed exactly on a record boundary; a cut
					// mid-record leaves the record partially delivered and
					// uncounted.
					stats.Records++
				}
				if opts.Progress != nil {
					opts.Progress(stats.Tuples)
				}
				return stats, nil
			}
		}
		stats.Records++
		if opts.Progress != nil {
			opts.Progress(stats.Tuples)
		}
	}
}

// ReplayToSession feeds a recorded history through a serving session —
// the same shard queue, transformation view and NFA evaluation a live
// producer gets, so detections are byte-identical to the original run —
// and flushes the session before returning.
func ReplayToSession(r *Reader, sess *serve.Session, opts ReplayOptions) (ReplayStats, error) {
	stats, err := Replay(r, sess.FeedTuple, opts)
	sess.Flush()
	return stats, err
}
