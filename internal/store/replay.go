package store

import (
	"io"
	"time"

	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
)

// ReplayOptions tunes playback speed.
type ReplayOptions struct {
	// Speed scales event time to wall-clock time: 1 replays at the
	// original rate, 2 at double speed, 0 (the default) as fast as the
	// sink accepts. Pacing is drift-free — each tuple is scheduled against
	// the replay start, not the previous tuple, so sleep jitter does not
	// accumulate.
	Speed float64
	// Offset skips the first Offset tuples of the recording before any is
	// delivered to the sink. Together with Limit this gives ordinal-bounded
	// replay [Offset, Offset+Limit) — the window a migration catch-up or a
	// resumed backfill reads. Skipped tuples are not counted, paced or
	// reported.
	Offset uint64
	// Limit stops the replay after this many tuples (0 = all).
	Limit uint64
	// Progress, when non-nil, is called once per replayed record with the
	// cumulative tuple count — the admin plane's replay-throughput gauge
	// source. Called on the replaying goroutine; keep it fast.
	Progress func(tuples uint64)
}

// ReplayStats reports what a replay delivered.
type ReplayStats struct {
	Records  uint64
	Tuples   uint64
	Duration time.Duration
	// EventSpan is the event-time distance between the first and last
	// replayed tuple.
	EventSpan time.Duration
}

// Replay streams a recorded history into sink in record order. The sink is
// called on the calling goroutine; an error from it aborts the replay.
func Replay(r *Reader, sink func(stream.Tuple) error, opts ReplayOptions) (ReplayStats, error) {
	var stats ReplayStats
	wallStart := time.Now()
	var eventStart, eventLast time.Time
	first := true
	skip := opts.Offset
	for {
		tuples, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, err
		}
		if skip >= uint64(len(tuples)) {
			skip -= uint64(len(tuples))
			continue
		}
		tuples = tuples[skip:]
		skip = 0
		for i := range tuples {
			t := tuples[i]
			if first {
				eventStart, eventLast = t.Ts, t.Ts
				first = false
			} else if t.Ts.After(eventLast) {
				eventLast = t.Ts
			}
			if opts.Speed > 0 {
				target := wallStart.Add(time.Duration(float64(t.Ts.Sub(eventStart)) / opts.Speed))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
			}
			if err := sink(t); err != nil {
				return stats, err
			}
			stats.Tuples++
			if opts.Limit > 0 && stats.Tuples >= opts.Limit {
				stats.Records++
				if opts.Progress != nil {
					opts.Progress(stats.Tuples)
				}
				stats.Duration = time.Since(wallStart)
				stats.EventSpan = eventLast.Sub(eventStart)
				return stats, nil
			}
		}
		stats.Records++
		if opts.Progress != nil {
			opts.Progress(stats.Tuples)
		}
	}
	stats.Duration = time.Since(wallStart)
	if !first {
		stats.EventSpan = eventLast.Sub(eventStart)
	}
	return stats, nil
}

// ReplayToSession feeds a recorded history through a serving session —
// the same shard queue, transformation view and NFA evaluation a live
// producer gets, so detections are byte-identical to the original run —
// and flushes the session before returning.
func ReplayToSession(r *Reader, sess *serve.Session, opts ReplayOptions) (ReplayStats, error) {
	stats, err := Replay(r, sess.FeedTuple, opts)
	sess.Flush()
	return stats, err
}
