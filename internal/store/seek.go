package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Seeking. A seek positions the reader at a record boundary by binary
// search — over segment base ordinals first (one 16-byte header read per
// segment, cached), then over the sealed segment's sparse index entries —
// and scans forward at most IndexEvery-1 records to the exact target.
// Streams without sidecars (recorded before indexing, or whose sidecars a
// crash tore) degrade to the sequential scan the store always supported;
// CRC validation and torn-tail semantics are identical on every path
// because the scan-forward step decodes through the same segmentReader.
//
// Seeks reset the reader's position wholesale (forward or backward) and do
// not advance the Counters() totals; records skipped inside a seek were
// never "read".

// metaAt lazily loads what a seek needs to know about segment position i:
// its base record ordinal (from the segment header, which is
// authoritative) and its sparse index, if a valid one exists. A sidecar
// whose base disagrees with the header — e.g. left stale by a crashed
// compaction — is ignored.
func (r *Reader) metaAt(i int) (*segMeta, error) {
	if r.meta == nil {
		r.meta = make([]segMeta, len(r.segs))
		for j := range r.meta {
			r.meta[j].index = r.segs[j]
		}
	}
	m := &r.meta[i]
	if m.idxTried {
		return m, nil
	}
	hdr, err := readSegHeaderFile(segmentPath(r.dir, m.index))
	if err != nil {
		return nil, fmt.Errorf("store: segment %d: %w", m.index, err)
	}
	m.base = hdr.baseRecord
	if ix, err := readSidecar(sidecarPath(r.dir, m.index)); err == nil && ix.baseRecord == hdr.baseRecord {
		m.idx = ix
	}
	m.idxTried = true
	return m, nil
}

// readSegHeaderFile reads and decodes just the fixed header of a segment.
func readSegHeaderFile(path string) (segHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return segHeader{}, err
	}
	defer f.Close()
	var hb [segHeaderBytes]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		return segHeader{}, fmt.Errorf("short segment header: %w", err)
	}
	return decodeSegHeader(hb[:])
}

// seekTo opens segment position segPos at the given byte offset, where the
// record with stream-wide ordinal next begins.
func (r *Reader) seekTo(segPos int, offset int64, next uint64) error {
	r.closeSegment()
	index := r.segs[segPos]
	f, err := os.Open(segmentPath(r.dir, index))
	if err != nil {
		return err
	}
	var hb [segHeaderBytes]byte
	if _, err := io.ReadFull(f, hb[:]); err != nil {
		f.Close()
		return fmt.Errorf("store: segment %d: short header: %w", index, err)
	}
	hdr, err := decodeSegHeader(hb[:])
	if err != nil {
		f.Close()
		return fmt.Errorf("store: segment %d: %w", index, err)
	}
	if hdr.fields != len(r.man.Fields) {
		f.Close()
		return fmt.Errorf("store: segment %d is %d fields wide, manifest declares %d",
			index, hdr.fields, len(r.man.Fields))
	}
	if offset > segHeaderBytes {
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return err
		}
	}
	r.f = f
	r.sr = newSegmentReaderAt(f, hdr, next)
	r.pos = segPos + 1
	r.started = true
	r.nextRecord = next
	return nil
}

// seekEnd positions the reader past all recorded data; Next reports io.EOF.
func (r *Reader) seekEnd() {
	r.closeSegment()
	r.pos = len(r.segs)
	r.started = true
}

// scanToRecord advances through records (validating each, exactly as Next
// would) until the next record to be returned has ordinal ord. Running out
// of data — ord lies beyond the recorded history, or past a torn tail — is
// not an error; the reader is simply left at the end.
func (r *Reader) scanToRecord(ord uint64) error {
	for {
		if r.sr == nil {
			if r.pos >= len(r.segs) {
				return nil
			}
			if err := r.openNext(); err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
		}
		if r.sr.next >= ord {
			r.nextRecord = r.sr.next
			return nil
		}
		_, err := r.sr.Next()
		if err == io.EOF {
			r.nextRecord = r.sr.next
			r.sr = nil
			if r.pos >= len(r.segs) {
				r.closeSegment()
				return nil
			}
			continue
		}
		if err != nil {
			if errors.Is(err, errTorn) && r.pos >= len(r.segs) {
				r.closeSegment()
				return nil
			}
			return err
		}
	}
}

// segFor binary-searches the segment holding record ordinal rec: the last
// segment whose base is at or below it. Returns 0 when rec precedes all
// retained history (a compacted-away prefix).
func (r *Reader) segFor(rec uint64) (int, error) {
	lo, hi := 0, len(r.segs)-1
	ans := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		m, err := r.metaAt(mid)
		if err != nil {
			return 0, err
		}
		if m.base <= rec {
			ans = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ans, nil
}

// SeekOrdinal positions the reader so the next record returned by Next is
// the one with stream-wide ordinal rec (or the first retained record after
// it: a compacted-away ordinal resolves to the start of retained history,
// an ordinal past the end to io.EOF). O(log segments + log entries) plus a
// scan of at most IndexEvery-1 records; without an index it scans.
func (r *Reader) SeekOrdinal(rec uint64) error {
	if len(r.segs) == 0 {
		r.seekEnd()
		return nil
	}
	i, err := r.segFor(rec)
	if err != nil {
		return err
	}
	m, err := r.metaAt(i)
	if err != nil {
		return err
	}
	pos, next := int64(segHeaderBytes), m.base
	if ix := m.idx; ix != nil && rec > m.base && len(ix.entries) > 0 {
		j := int((rec - m.base) / uint64(ix.every))
		if j >= len(ix.entries) {
			j = len(ix.entries) - 1
		}
		pos, next = ix.entries[j].offset, m.base+uint64(j)*uint64(ix.every)
	}
	if err := r.seekTo(i, pos, next); err != nil {
		return err
	}
	return r.scanToRecord(rec)
}

// SeekTuple positions the reader at a record boundary at or before the
// tuple with stream-wide ordinal off and returns how many tuples remain
// between the new position and the target — the caller (Replay's Offset
// path) skips the remainder tuple by tuple, which keeps the delivered
// sequence byte-identical to a full scan. On a stream with no index at all
// the reader is left at the start and the full offset is returned; an
// offset inside a compacted-away prefix resolves to the start of retained
// history with zero remainder.
func (r *Reader) SeekTuple(off uint64) (uint64, error) {
	if len(r.segs) == 0 {
		r.seekEnd()
		return 0, nil
	}
	base := uint64(0) // tuple ordinal at segment i's start, per the sidecar chain
	for i := range r.segs {
		m, err := r.metaAt(i)
		if err != nil {
			return 0, err
		}
		if m.idx == nil {
			if i == 0 {
				// No index anywhere the chain could start: plain scan.
				return off, nil
			}
			// The indexed chain ends here (the active tail segment, or a
			// sidecar lost to a crash): position at this segment's start
			// and let the caller skip the rest.
			if err := r.seekTo(i, segHeaderBytes, m.base); err != nil {
				return 0, err
			}
			return off - base, nil
		}
		ix := m.idx
		if i == 0 && off < ix.baseTuple {
			// The target tuple was compacted away.
			if err := r.seekTo(0, segHeaderBytes, m.base); err != nil {
				return 0, err
			}
			return 0, nil
		}
		if off < ix.baseTuple+ix.tuples {
			pos, next, skip := int64(segHeaderBytes), m.base, off-ix.baseTuple
			j := sort.Search(len(ix.entries), func(j int) bool { return ix.entries[j].tupleOrd > off }) - 1
			if j >= 0 {
				pos, next = ix.entries[j].offset, m.base+uint64(j)*uint64(ix.every)
				skip = off - ix.entries[j].tupleOrd
			}
			if err := r.seekTo(i, pos, next); err != nil {
				return 0, err
			}
			return skip, nil
		}
		base = ix.baseTuple + ix.tuples
	}
	// off lies beyond everything recorded.
	r.seekEnd()
	return 0, nil
}

// SeekTime positions the reader at a record boundary at or before the
// first tuple with event time at. Sealed segments whose entire span
// precedes at are skipped without being read. Exact when record-level
// first timestamps are non-decreasing (live recordings are); otherwise
// conservative within a segment — it may position earlier than strictly
// needed, and callers filter by timestamp, as Backfill's Since/Until do.
func (r *Reader) SeekTime(at time.Time) error {
	atNs := at.UnixNano()
	for i := range r.segs {
		m, err := r.metaAt(i)
		if err != nil {
			return err
		}
		if m.idx != nil && m.idx.lastTsNs < atNs {
			continue // every tuple in this sealed segment is older than at
		}
		pos, next := int64(segHeaderBytes), m.base
		if ix := m.idx; ix != nil {
			j := sort.Search(len(ix.entries), func(j int) bool { return ix.entries[j].tsNs > atNs }) - 1
			if j >= 0 {
				pos, next = ix.entries[j].offset, m.base+uint64(j)*uint64(ix.every)
			}
		}
		return r.seekTo(i, pos, next)
	}
	// Everything recorded is older than at.
	r.seekEnd()
	return nil
}
