package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// Writer appends tuples to one recorded stream. Tuples are buffered into
// records of Options.BatchTuples and framed with a CRC; segments roll at
// Options.SegmentBytes, and sealing a segment writes its sparse index
// sidecar. Safe for concurrent use (appends serialize on an internal
// lock), though the usual producer is a single Recorder drain goroutine.
//
// Appended tuples are retained until their record is written; callers that
// mutate field slices after Append must pass a Clone. (Tuples taken off a
// live stream are immutable by convention and need no copy.)
type Writer struct {
	dir  string
	man  Manifest
	opts Options

	mu        sync.Mutex
	f         *os.File
	bw        *bufio.Writer
	segIndex  int
	segBytes  int64
	records   uint64 // stream-wide records written (== next record ordinal)
	tuples    uint64 // tuples appended this writer (excludes history)
	bytes     uint64 // record bytes written this writer (headers + payloads)
	batch     []stream.Tuple
	encBuf    []byte
	closed    bool
	failed    error // sticky: a failed roll poisons the writer
	recovered RecoveryInfo

	// Sparse-index state of the segment currently being appended, written
	// out as the sidecar when the segment seals.
	streamTuples uint64 // stream-wide tuples written (== next tuple ordinal)
	seg          struct {
		baseRecord uint64
		baseTuple  uint64
		entries    []idxEntry
		firstTsNs  int64
		lastTsNs   int64
	}
}

func newWriter(dir string, man Manifest, opts Options) *Writer {
	return &Writer{dir: dir, man: man, opts: opts.withDefaults(len(man.Fields))}
}

// Manifest returns the stream's immutable metadata.
func (w *Writer) Manifest() Manifest { return w.man }

// Dir returns the stream directory.
func (w *Writer) Dir() string { return w.dir }

// Recovered reports what Open had to repair; zero after Create.
func (w *Writer) Recovered() RecoveryInfo { return w.recovered }

// Records returns the stream-wide record count (history plus this run).
func (w *Writer) Records() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Tuples returns the number of tuples appended through this writer,
// including those still buffered.
func (w *Writer) Tuples() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tuples + uint64(len(w.batch))
}

// Bytes returns the record bytes (headers plus payloads) written through
// this writer — the admin plane's append-throughput gauge source. Excludes
// history and tuples still buffered.
func (w *Writer) Bytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// resetSegState points the sparse-index accumulator at a fresh segment.
func (w *Writer) resetSegState(baseRecord uint64) {
	w.seg.baseRecord = baseRecord
	w.seg.baseTuple = w.streamTuples
	w.seg.entries = w.seg.entries[:0]
	w.seg.firstTsNs, w.seg.lastTsNs = 0, 0
}

// openSegment creates segment index with the given base record ordinal and
// makes it the append target.
func (w *Writer) openSegment(index int, baseRecord uint64) error {
	f, err := os.OpenFile(segmentPath(w.dir, index), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeSegHeader(segHeader{fields: len(w.man.Fields), baseRecord: baseRecord})
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 64<<10)
	w.segIndex = index
	w.segBytes = segHeaderBytes
	w.records = baseRecord
	w.resetSegState(baseRecord)
	return nil
}

// recover positions the writer at the end of the last valid record,
// repairing a torn tail: the last segment is scanned record by record and
// truncated back to the last CRC-valid boundary; a tail segment whose very
// header is torn is removed and the scan falls back to the previous one.
// The reopened segment's sidecar (if any) is discarded — it described a
// sealed segment this writer is about to extend — and its sparse-index
// state is rebuilt from the scan so the next seal writes a correct one.
func (w *Writer) recover() error {
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for len(segs) > 0 {
		index := segs[len(segs)-1]
		path := segmentPath(w.dir, index)
		scan, headerOK, err := scanSegment(path, w.opts.IndexEvery)
		if err != nil {
			return fmt.Errorf("store: segment %d of stream %q: %w", index, w.man.Stream, err)
		}
		if !headerOK {
			if err := os.Remove(path); err != nil {
				return err
			}
			os.Remove(sidecarPath(w.dir, index))
			w.recovered.RemovedSegments++
			segs = segs[:len(segs)-1]
			continue
		}
		if scan.hdr.fields != len(w.man.Fields) {
			return fmt.Errorf("store: segment %d is %d fields wide, manifest declares %d",
				index, scan.hdr.fields, len(w.man.Fields))
		}
		baseTuple, err := tupleBaseOf(w.dir, segs, len(segs)-1)
		if err != nil {
			return fmt.Errorf("store: stream %q: %w", w.man.Stream, err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return err
		}
		if st.Size() > scan.validBytes {
			if err := f.Truncate(scan.validBytes); err != nil {
				f.Close()
				return err
			}
			w.recovered.TruncatedBytes += st.Size() - scan.validBytes
		}
		if _, err := f.Seek(scan.validBytes, 0); err != nil {
			f.Close()
			return err
		}
		// The sidecar, if one exists, described the sealed segment before
		// this writer reopened it for append; the seal path rewrites it.
		if err := os.Remove(sidecarPath(w.dir, index)); err != nil && !os.IsNotExist(err) {
			f.Close()
			return err
		}
		w.f = f
		w.bw = bufio.NewWriterSize(f, 64<<10)
		w.segIndex = index
		w.segBytes = scan.validBytes
		w.records = scan.hdr.baseRecord + scan.records
		w.streamTuples = baseTuple + scan.tuples
		w.seg.baseRecord = scan.hdr.baseRecord
		w.seg.baseTuple = baseTuple
		w.seg.entries = w.seg.entries[:0]
		for _, e := range scan.idx {
			e.tupleOrd += baseTuple // scan ordinals are segment-relative
			w.seg.entries = append(w.seg.entries, e)
		}
		w.seg.firstTsNs, w.seg.lastTsNs = scan.firstTsNs, scan.lastTsNs
		return nil
	}
	// Every segment was torn away (or the stream never got one): start over.
	w.streamTuples = 0
	return w.openSegment(1, 0)
}

// Append buffers one tuple; a full buffer is written out as one record.
func (w *Writer) Append(t stream.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return fmt.Errorf("store: writer for %q is closed", w.man.Stream)
	}
	if len(t.Fields) != len(w.man.Fields) {
		return fmt.Errorf("store: tuple has %d fields, stream %q records %d",
			len(t.Fields), w.man.Stream, len(w.man.Fields))
	}
	w.batch = append(w.batch, t)
	if len(w.batch) >= w.opts.BatchTuples {
		return w.writeRecordLocked()
	}
	return nil
}

// writeRecordLocked flushes the buffered tuples as one CRC-framed record
// and rolls the segment if it crossed the size threshold.
func (w *Writer) writeRecordLocked() error {
	if len(w.batch) == 0 {
		return nil
	}
	payload, err := wire.AppendBatch(w.encBuf[:0], uint32(w.records), len(w.man.Fields), w.batch)
	if err != nil {
		return err
	}
	w.encBuf = payload[:0]
	if rel := w.records - w.seg.baseRecord; rel%uint64(w.opts.IndexEvery) == 0 {
		w.seg.entries = append(w.seg.entries, idxEntry{
			tupleOrd: w.streamTuples,
			tsNs:     w.batch[0].Ts.UnixNano(),
			offset:   w.segBytes,
		})
	}
	if w.seg.firstTsNs == 0 {
		w.seg.firstTsNs = w.batch[0].Ts.UnixNano()
	}
	for i := range w.batch {
		if ns := w.batch[i].Ts.UnixNano(); ns > w.seg.lastTsNs {
			w.seg.lastTsNs = ns
		}
	}
	var hdr [recHeaderBytes]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	w.records++
	w.tuples += uint64(len(w.batch))
	w.streamTuples += uint64(len(w.batch))
	w.batch = w.batch[:0]
	w.bytes += uint64(recHeaderBytes + len(payload))
	w.segBytes += int64(recHeaderBytes + len(payload))
	if w.segBytes >= w.opts.SegmentBytes {
		if err := w.rollLocked(); err != nil {
			// A failed roll leaves no segment safe to append to — the old
			// file is sealed (or half-sealed), the new one never opened.
			// Poison the writer so every later call surfaces the fault
			// instead of quietly buffering into a closed file.
			w.failed = fmt.Errorf("store: stream %q: segment roll failed: %w", w.man.Stream, err)
			return w.failed
		}
	}
	return nil
}

// rollLocked seals the current segment and opens the next one.
func (w *Writer) rollLocked() error {
	if err := w.sealLocked(); err != nil {
		return err
	}
	return w.openSegment(w.segIndex+1, w.records)
}

// sealLocked flushes and closes the current segment file, then writes its
// sparse index sidecar. The sidecar lands only after the data it describes
// is safely closed; a crash between the two just leaves a sealed segment
// without an index, which readers scan.
func (w *Writer) sealLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.opts.Sync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return writeSidecar(sidecarPath(w.dir, w.segIndex), &segIndex{
		every:      w.opts.IndexEvery,
		baseRecord: w.seg.baseRecord,
		baseTuple:  w.seg.baseTuple,
		records:    w.records - w.seg.baseRecord,
		tuples:     w.streamTuples - w.seg.baseTuple,
		firstTsNs:  w.seg.firstTsNs,
		lastTsNs:   w.seg.lastTsNs,
		entries:    w.seg.entries,
	})
}

// Flush writes any buffered tuples out as a (possibly short) record and
// pushes everything to the OS; with Options.Sync it also fsyncs.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if w.closed {
		return fmt.Errorf("store: writer for %q is closed", w.man.Stream)
	}
	if err := w.writeRecordLocked(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.opts.Sync {
		return w.f.Sync()
	}
	return nil
}

// Close flushes buffered tuples and closes the segment file. The stream
// can be resumed later with Open.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.failed != nil {
		// The roll already closed (or lost) the segment file; there is
		// nothing consistent left to flush into.
		return w.failed
	}
	if err := w.writeRecordLocked(); err != nil {
		return err
	}
	return w.sealLocked()
}
