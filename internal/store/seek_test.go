package store

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// smallSegOpts forces many small segments and records so seeks cross
// plenty of segment and index-entry boundaries.
var smallSegOpts = Options{SegmentBytes: 512, BatchTuples: 4, IndexEvery: 2}

// buildStream records n synthetic tuples under the given options and
// closes the stream (sealing every segment with a sidecar).
func buildStream(t testing.TB, root, name string, n int, opts Options) []stream.Tuple {
	t.Helper()
	w, err := Create(root, name, synthSchema, opts)
	if err != nil {
		t.Fatal(err)
	}
	tuples := synthTuples(n)
	for _, tu := range tuples {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return tuples
}

// dropSidecars deletes every index sidecar of a stream, simulating a
// recording from before indexing existed.
func dropSidecars(t testing.TB, root, name string) {
	t.Helper()
	dir := StreamDir(root, name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), idxSuffix) {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// readFrom drains the reader into a flat tuple slice.
func readFrom(t testing.TB, r *Reader) []stream.Tuple {
	t.Helper()
	var out []stream.Tuple
	for {
		tuples, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tuples...)
	}
}

// TestSeekOrdinalAcrossSegments seeks to record ordinals spread over many
// small segments — with and without sidecars — and expects Next to resume
// at exactly the right record either way.
func TestSeekOrdinalAcrossSegments(t *testing.T) {
	root := t.TempDir()
	const n = 400
	tuples := buildStream(t, root, "s", n, smallSegOpts)
	records := n / smallSegOpts.BatchTuples

	for _, indexed := range []bool{true, false} {
		name := "indexed"
		if !indexed {
			name = "scan-fallback"
			dropSidecars(t, root, "s")
		}
		t.Run(name, func(t *testing.T) {
			r, err := OpenReader(root, "s")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for _, rec := range []uint64{0, 1, 2, 3, 17, 50, uint64(records) - 1} {
				if err := r.SeekOrdinal(rec); err != nil {
					t.Fatalf("SeekOrdinal(%d): %v", rec, err)
				}
				got, err := r.Next()
				if err != nil {
					t.Fatalf("Next after SeekOrdinal(%d): %v", rec, err)
				}
				wantFirst := tuples[int(rec)*smallSegOpts.BatchTuples]
				if !got[0].Ts.Equal(wantFirst.Ts) || got[0].Seq != wantFirst.Seq {
					t.Fatalf("SeekOrdinal(%d): got record starting seq %d, want %d", rec, got[0].Seq, wantFirst.Seq)
				}
			}
			// Seeking backward works too (seeks reset position wholesale).
			if err := r.SeekOrdinal(0); err != nil {
				t.Fatal(err)
			}
			if got := readFrom(t, r); len(got) != n {
				t.Fatalf("full read after rewind: %d tuples, want %d", len(got), n)
			}
			// Past the end: clean EOF.
			if err := r.SeekOrdinal(uint64(records) + 100); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Next(); err != io.EOF {
				t.Fatalf("Next past end: %v, want io.EOF", err)
			}
		})
	}
}

// TestSeekThenReplayByteIdentity pins the tentpole invariant: a replay
// windowed with Offset over an indexed stream delivers a byte-identical
// tuple sequence to a full-scan replay of the same window on a stream
// with no index at all.
func TestSeekThenReplayByteIdentity(t *testing.T) {
	root := t.TempDir()
	const n = 300
	tuples := buildStream(t, root, "indexed", n, smallSegOpts)
	buildStream(t, root, "plain", n, smallSegOpts)
	dropSidecars(t, root, "plain")

	for _, off := range []uint64{0, 1, 3, 4, 37, 128, 299, 300, 1000} {
		collect := func(name string) []stream.Tuple {
			r, err := OpenReader(root, name)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			var got []stream.Tuple
			stats, err := Replay(r, func(tu stream.Tuple) error { got = append(got, tu); return nil },
				ReplayOptions{Offset: off})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Tuples != uint64(len(got)) {
				t.Fatalf("stats.Tuples %d, sink saw %d", stats.Tuples, len(got))
			}
			return got
		}
		fast, slow := collect("indexed"), collect("plain")
		tuplesEqual(t, fast, slow)
		want := []stream.Tuple{}
		if off < n {
			want = tuples[off:]
		}
		tuplesEqual(t, fast, want)
	}
}

// TestSeekTime positions conservatively: every tuple at or after the
// target time must still be readable, and the seek must land within one
// index stride of the boundary rather than at the stream start.
func TestSeekTime(t *testing.T) {
	root := t.TempDir()
	const n = 400
	tuples := buildStream(t, root, "s", n, smallSegOpts)

	r, err := OpenReader(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, target := range []int{0, 10, 57, 200, 399} {
		at := tuples[target].Ts
		if err := r.SeekTime(at); err != nil {
			t.Fatalf("SeekTime(%v): %v", at, err)
		}
		rest := readFrom(t, r)
		var wantAfter int
		for _, tu := range tuples {
			if !tu.Ts.Before(at) {
				wantAfter++
			}
		}
		after := 0
		for _, tu := range rest {
			if !tu.Ts.Before(at) {
				after++
			}
		}
		if after != wantAfter {
			t.Fatalf("SeekTime(%v): %d tuples at/after target, want %d", at, after, wantAfter)
		}
		// Accelerated: the position may undershoot by at most one index
		// stride of records (plus the record containing the boundary).
		maxExtra := (smallSegOpts.IndexEvery + 1) * smallSegOpts.BatchTuples
		if len(rest) > wantAfter+maxExtra {
			t.Fatalf("SeekTime(%v): delivered %d tuples, want at most %d", at, len(rest), wantAfter+maxExtra)
		}
	}
	// Past the newest tuple: clean EOF.
	if err := r.SeekTime(tuples[n-1].Ts.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next past end: %v, want io.EOF", err)
	}
}

// TestInfoFromIndex expects Info to report exact totals and span from the
// sidecars alone, and to survive (and notice) their absence.
func TestInfoFromIndex(t *testing.T) {
	root := t.TempDir()
	const n = 250
	tuples := buildStream(t, root, "s", n, smallSegOpts)

	info, err := Info(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Indexed {
		t.Fatal("cleanly closed stream should be fully indexed")
	}
	if info.Tuples != n {
		t.Fatalf("Info.Tuples = %d, want %d", info.Tuples, n)
	}
	if wantRecords := uint64((n + smallSegOpts.BatchTuples - 1) / smallSegOpts.BatchTuples); info.Records != wantRecords {
		t.Fatalf("Info.Records = %d, want %d", info.Records, wantRecords)
	}
	if !info.First.Equal(tuples[0].Ts) || !info.Last.Equal(tuples[n-1].Ts) {
		t.Fatalf("Info span [%v, %v], want [%v, %v]", info.First, info.Last, tuples[0].Ts, tuples[n-1].Ts)
	}

	dropSidecars(t, root, "s")
	info2, err := Info(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Indexed {
		t.Fatal("sidecar-less stream reported as indexed")
	}
	if info2.Tuples != info.Tuples || info2.Records != info.Records ||
		!info2.First.Equal(info.First) || !info2.Last.Equal(info.Last) {
		t.Fatalf("scan fallback disagrees with index: %+v vs %+v", info2, info)
	}
}

// TestCrashRecoveryTornIndexSidecar pins that a mangled sidecar never
// breaks a stream: reads fall back to scanning, seeks stay exact, and
// reopening the stream for append discards and eventually rewrites the
// sidecar of the segment it extends.
func TestCrashRecoveryTornIndexSidecar(t *testing.T) {
	root := t.TempDir()
	const n = 200
	tuples := buildStream(t, root, "s", n, smallSegOpts)
	dir := StreamDir(root, "s")
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (err %v)", len(segs), err)
	}

	// Tear the first sidecar mid-file and scribble over the second.
	first := sidecarPath(dir, segs[0])
	b, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	second := sidecarPath(dir, segs[1])
	if err := os.WriteFile(second, []byte("garbage sidecar"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reads and seeks are unaffected.
	got, err := ReadAll(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, tuples)
	r, err := OpenReader(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	rem, err := r.SeekTuple(100)
	if err != nil {
		t.Fatal(err)
	}
	var after []stream.Tuple
	for skip := rem; ; {
		tu, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if skip >= uint64(len(tu)) {
			skip -= uint64(len(tu))
			continue
		}
		after = append(after, tu[skip:]...)
		skip = 0
	}
	r.Close()
	tuplesEqual(t, after, tuples[100:])

	// Reopen for append: recovery must not trip over either sidecar, and
	// the extended tail segment's stale sidecar must be gone until the
	// next seal rewrites it.
	w, err := Open(root, "s", smallSegOpts)
	if err != nil {
		t.Fatal(err)
	}
	tail := segs[len(segs)-1]
	if _, err := os.Stat(sidecarPath(dir, tail)); !os.IsNotExist(err) {
		t.Fatalf("reopened segment still has a sidecar (err %v)", err)
	}
	more := synthTuples(n + 40)[n:]
	for _, tu := range more {
		if err := w.Append(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	tuplesEqual(t, got, append(append([]stream.Tuple(nil), tuples...), more...))

	// The close resealed the tail: its sidecar is back and coherent, and
	// tuple-ordinal seeks across the recovered boundary stay exact.
	r2, err := OpenReader(root, "s")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	rem2, err := r2.SeekTuple(uint64(n + 20))
	if err != nil {
		t.Fatal(err)
	}
	rest := readFrom(t, r2)
	if uint64(len(rest)) < rem2 || len(rest)-int(rem2) != 20 {
		t.Fatalf("SeekTuple after recovery: %d tuples minus %d remainder, want 20", len(rest), rem2)
	}
}
