package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"testing"
	"time"

	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// buildSegment assembles valid segment bytes for fuzz seeds.
func buildSegment(fields int, base uint64, batches [][]stream.Tuple) []byte {
	hdr := encodeSegHeader(segHeader{fields: fields, baseRecord: base})
	out := append([]byte(nil), hdr[:]...)
	for i, tuples := range batches {
		payload, err := wire.AppendBatch(nil, uint32(base)+uint32(i), fields, tuples)
		if err != nil {
			continue
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
		out = binary.BigEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
		out = append(out, payload...)
	}
	return out
}

// FuzzReadSegment feeds adversarial segment bytes to the record reader.
// Contracts (mirroring the wire fuzz targets): never panic, never allocate
// beyond MaxRecordBytes however the length fields lie, and accept only
// records that re-encode canonically — a record the reader returns is one
// the writer could have produced.
func FuzzReadSegment(f *testing.F) {
	ts := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	mk := func(n, fields int) []stream.Tuple {
		out := make([]stream.Tuple, n)
		for i := range out {
			fs := make([]float64, fields)
			for j := range fs {
				fs[j] = float64(i*j) - 1.5
			}
			out[i] = stream.Tuple{Ts: ts.Add(time.Duration(i) * time.Millisecond), Seq: uint64(i), Fields: fs}
		}
		return out
	}
	f.Add(buildSegment(3, 0, [][]stream.Tuple{mk(4, 3), mk(2, 3)}))
	f.Add(buildSegment(1, 7, [][]stream.Tuple{mk(1, 1)}))
	// Torn tail: a valid segment with its last bytes chopped off.
	whole := buildSegment(2, 0, [][]stream.Tuple{mk(8, 2)})
	f.Add(whole[:len(whole)-5])
	// Header only, short header, lying record length.
	hdr := encodeSegHeader(segHeader{fields: 5, baseRecord: 1})
	f.Add(append([]byte(nil), hdr[:]...))
	f.Add(hdr[:7])
	lying := append([]byte(nil), hdr[:]...)
	lying = binary.BigEndian.AppendUint32(lying, 0xffffffff)
	lying = binary.BigEndian.AppendUint32(lying, 0)
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := newSegmentReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 64; i++ {
			b, err := sr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if cap(sr.buf) > MaxRecordBytes {
				t.Fatalf("record buffer grew to %d bytes", cap(sr.buf))
			}
			if len(b.Tuples) > wire.MaxBatch || b.Fields > wire.MaxTupleFields {
				t.Fatalf("accepted batch exceeds limits: %d×%d", len(b.Tuples), b.Fields)
			}
			if b.Fields != sr.hdr.fields {
				t.Fatalf("accepted batch of %d fields under a %d-field header", b.Fields, sr.hdr.fields)
			}
			re, err := wire.AppendBatch(nil, b.Handle, b.Fields, b.Tuples)
			if err != nil {
				t.Fatalf("accepted record does not re-encode: %v", err)
			}
			// sr.buf still holds the payload the record was decoded from;
			// canonical encoding means the re-encode reproduces it exactly.
			if len(re) > len(sr.buf) || !bytes.Equal(re, sr.buf[:len(re)]) {
				t.Fatalf("record decode/encode not canonical")
			}
		}
	})
}
