package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// Sparse segment index. Every sealed segment carries a small sidecar file
// (000000000001.idx next to 000000000001.seg) describing the segment as a
// whole — base/record/tuple counts and the event-time span — plus one
// entry every Options.IndexEvery records: the record's stream-wide first
// tuple ordinal, its first tuple's event time, and its byte offset in the
// segment file. Seeks binary-search segment headers, then the sparse
// entries, then scan at most IndexEvery-1 records — O(log) opens instead
// of a front-to-back CRC scan of everything ever recorded.
//
// The sidecar is strictly an accelerator: it is CRC-framed and
// self-describing, and any sidecar that is missing, torn or fails
// validation is treated as absent — readers fall back to the sequential
// scan, so streams recorded before indexing existed (and streams whose
// sidecar a crash mangled) stay readable with unchanged torn-tail and
// corruption semantics. Only the writer's seal path and the compactor ever
// produce sidecars; the active (still-appended) segment never has one.
const (
	idxMagic       = 0x47494458 // "GIDX"
	idxVersion     = 1
	idxSuffix      = ".idx"
	idxHeaderBytes = 60 // magic u32 | version u8 | reserved u8 | every u16 | baseRecord u64 | baseTuple u64 | records u64 | tuples u64 | firstTsNs i64 | lastTsNs i64 | count u32
	idxEntryBytes  = 24 // tupleOrd u64 | tsNs i64 | offset u64
	idxCRCBytes    = 4
)

// DefaultIndexEvery is the default record stride between sparse entries.
const DefaultIndexEvery = 8

// idxEntry describes the record at stream-wide ordinal
// baseRecord + i*every for the i-th entry.
type idxEntry struct {
	tupleOrd uint64 // stream-wide ordinal of the record's first tuple
	tsNs     int64  // event time of the record's first tuple
	offset   int64  // byte offset of the record header in the segment file
}

// segIndex is one decoded sidecar.
type segIndex struct {
	every      int
	baseRecord uint64
	baseTuple  uint64
	records    uint64
	tuples     uint64
	firstTsNs  int64
	lastTsNs   int64
	entries    []idxEntry
}

// sidecarPath names the index sidecar of the index-th segment.
func sidecarPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("%012d%s", index, idxSuffix))
}

func encodeSidecar(ix *segIndex) []byte {
	b := make([]byte, idxHeaderBytes+len(ix.entries)*idxEntryBytes+idxCRCBytes)
	binary.BigEndian.PutUint32(b[0:4], idxMagic)
	b[4] = idxVersion
	binary.BigEndian.PutUint16(b[6:8], uint16(ix.every))
	binary.BigEndian.PutUint64(b[8:16], ix.baseRecord)
	binary.BigEndian.PutUint64(b[16:24], ix.baseTuple)
	binary.BigEndian.PutUint64(b[24:32], ix.records)
	binary.BigEndian.PutUint64(b[32:40], ix.tuples)
	binary.BigEndian.PutUint64(b[40:48], uint64(ix.firstTsNs))
	binary.BigEndian.PutUint64(b[48:56], uint64(ix.lastTsNs))
	binary.BigEndian.PutUint32(b[56:60], uint32(len(ix.entries)))
	off := idxHeaderBytes
	for _, e := range ix.entries {
		binary.BigEndian.PutUint64(b[off:off+8], e.tupleOrd)
		binary.BigEndian.PutUint64(b[off+8:off+16], uint64(e.tsNs))
		binary.BigEndian.PutUint64(b[off+16:off+24], uint64(e.offset))
		off += idxEntryBytes
	}
	binary.BigEndian.PutUint32(b[off:off+4], crc32.ChecksumIEEE(b[:off]))
	return b
}

// writeSidecar writes the sidecar in one shot; a crash mid-write leaves a
// torn file the CRC rejects, which readers treat as no index at all.
func writeSidecar(path string, ix *segIndex) error {
	return os.WriteFile(path, encodeSidecar(ix), 0o644)
}

// errNoIndex marks a sidecar that is absent or unusable; every decode
// failure folds into it because the only correct reaction is the same:
// fall back to scanning the segment.
var errNoIndex = errors.New("store: no usable segment index")

// readSidecar loads and validates one sidecar. Any defect — short file,
// bad magic, CRC mismatch, internally inconsistent entries — returns
// errNoIndex (wrapped); the caller scans instead.
func readSidecar(path string) (*segIndex, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errNoIndex, err)
	}
	if len(b) < idxHeaderBytes+idxCRCBytes {
		return nil, fmt.Errorf("%w: %d bytes", errNoIndex, len(b))
	}
	if magic := binary.BigEndian.Uint32(b[0:4]); magic != idxMagic {
		return nil, fmt.Errorf("%w: bad magic %#08x", errNoIndex, magic)
	}
	if b[4] != idxVersion {
		return nil, fmt.Errorf("%w: version %d", errNoIndex, b[4])
	}
	count := int(binary.BigEndian.Uint32(b[56:60]))
	want := idxHeaderBytes + count*idxEntryBytes + idxCRCBytes
	if len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d entries, want %d", errNoIndex, len(b), count, want)
	}
	stored := binary.BigEndian.Uint32(b[want-idxCRCBytes:])
	if got := crc32.ChecksumIEEE(b[:want-idxCRCBytes]); got != stored {
		return nil, fmt.Errorf("%w: crc %#08x, stored %#08x", errNoIndex, got, stored)
	}
	ix := &segIndex{
		every:      int(binary.BigEndian.Uint16(b[6:8])),
		baseRecord: binary.BigEndian.Uint64(b[8:16]),
		baseTuple:  binary.BigEndian.Uint64(b[16:24]),
		records:    binary.BigEndian.Uint64(b[24:32]),
		tuples:     binary.BigEndian.Uint64(b[32:40]),
		firstTsNs:  int64(binary.BigEndian.Uint64(b[40:48])),
		lastTsNs:   int64(binary.BigEndian.Uint64(b[48:56])),
	}
	if ix.every <= 0 {
		return nil, fmt.Errorf("%w: stride %d", errNoIndex, ix.every)
	}
	ix.entries = make([]idxEntry, count)
	off := idxHeaderBytes
	var prev idxEntry
	for i := range ix.entries {
		e := idxEntry{
			tupleOrd: binary.BigEndian.Uint64(b[off : off+8]),
			tsNs:     int64(binary.BigEndian.Uint64(b[off+8 : off+16])),
			offset:   int64(binary.BigEndian.Uint64(b[off+16 : off+24])),
		}
		// Entries must advance through the file and the tuple sequence, and
		// the first must start exactly at the segment base.
		if e.offset < segHeaderBytes ||
			(i == 0 && e.tupleOrd != ix.baseTuple) ||
			(i > 0 && (e.offset <= prev.offset || e.tupleOrd <= prev.tupleOrd || e.tsNs < prev.tsNs)) {
			return nil, fmt.Errorf("%w: entry %d out of order", errNoIndex, i)
		}
		ix.entries[i] = e
		prev = e
		off += idxEntryBytes
	}
	return ix, nil
}

// StreamInfo summarizes one recorded stream, read from the sparse indexes
// where present (O(segments) small reads) and by scanning only the
// segments without one — typically just the unsealed tail of a crashed
// stream, so listing an archive no longer CRC-scans every byte of every
// recording.
type StreamInfo struct {
	Stream   string
	Segments int
	Records  uint64
	Tuples   uint64
	Bytes    int64 // segment file bytes on disk (headers included)
	// First and Last bound the event time of the recorded tuples; zero
	// when the stream is empty.
	First, Last time.Time
	// Indexed reports whether every segment was covered by a valid sparse
	// index (the unsealed tail segment of a cleanly closed stream is).
	Indexed bool
}

// Info reads a stream's summary without replaying it.
func Info(root, name string) (StreamInfo, error) {
	dir := StreamDir(root, name)
	man, err := readManifest(dir)
	if err != nil {
		return StreamInfo{}, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return StreamInfo{}, err
	}
	info := StreamInfo{Stream: man.Stream, Segments: len(segs), Indexed: true}
	var firstNs, lastNs int64
	note := func(f, l int64) {
		if l == 0 { // empty segment
			return
		}
		if firstNs == 0 || f < firstNs {
			firstNs = f
		}
		if l > lastNs {
			lastNs = l
		}
	}
	for _, index := range segs {
		if st, err := os.Stat(segmentPath(dir, index)); err == nil {
			info.Bytes += st.Size()
		}
		if ix, err := readSidecar(sidecarPath(dir, index)); err == nil {
			info.Records += ix.records
			info.Tuples += ix.tuples
			note(ix.firstTsNs, ix.lastTsNs)
			continue
		}
		info.Indexed = false
		scan, headerOK, err := scanSegment(segmentPath(dir, index), 0)
		if err != nil {
			return info, fmt.Errorf("store: segment %d of stream %q: %w", index, man.Stream, err)
		}
		if !headerOK {
			continue // torn before the header; recovery would discard it
		}
		info.Records += scan.records
		info.Tuples += scan.tuples
		note(scan.firstTsNs, scan.lastTsNs)
	}
	if firstNs != 0 {
		info.First = time.Unix(0, firstNs).UTC()
	}
	if lastNs != 0 {
		info.Last = time.Unix(0, lastNs).UTC()
	}
	return info, nil
}

// tupleBaseOf computes the stream-wide tuple ordinal at which segment
// segs[upto] starts: the nearest earlier sidecar anchors the count and any
// unindexed segments after it are scanned. Recovery uses it to resume the
// tuple-ordinal chain of a crashed (or pre-index) stream.
func tupleBaseOf(dir string, segs []int, upto int) (uint64, error) {
	var base uint64
	start := 0
	for j := upto - 1; j >= 0; j-- {
		if ix, err := readSidecar(sidecarPath(dir, segs[j])); err == nil {
			base = ix.baseTuple + ix.tuples
			start = j + 1
			break
		}
	}
	for j := start; j < upto; j++ {
		scan, headerOK, err := scanSegment(segmentPath(dir, segs[j]), 0)
		if err != nil || !headerOK {
			return 0, fmt.Errorf("store: segment %d unreadable while rebuilding tuple ordinals: %v", segs[j], err)
		}
		base += scan.tuples
	}
	return base, nil
}
