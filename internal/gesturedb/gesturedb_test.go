package gesturedb

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
)

func testEntry(t *testing.T, name string) Entry {
	t.Helper()
	w, err := geom.FromCenterWidth([]float64{0, 150, -120}, []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := geom.FromCenterWidth([]float64{700, 150, -120}, []float64{100, 100, 100})
	if err != nil {
		t.Fatal(err)
	}
	return Entry{
		Name:      name,
		QueryText: `SELECT "` + name + `" MATCHING kinect_t(abs(rHand_x - 0) < 50);`,
		Model: learn.Model{
			Name:          name,
			Joints:        []kinect.Joint{kinect.RightHand},
			Windows:       []geom.MBR{w, w2},
			StepDurations: []time.Duration{300 * time.Millisecond},
			TotalDuration: 300 * time.Millisecond,
			Samples:       3,
		},
	}
}

func TestPutGetDelete(t *testing.T) {
	db := New()
	e := testEntry(t, "swipe_right")
	if err := db.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Get("swipe_right")
	if !ok || got.Name != "swipe_right" {
		t.Fatal("Get failed")
	}
	if got.Created.IsZero() {
		t.Error("Created not stamped")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	// Put replaces.
	e2 := testEntry(t, "swipe_right")
	e2.Notes = "v2"
	if err := db.Put(e2); err != nil {
		t.Fatal(err)
	}
	got, _ = db.Get("swipe_right")
	if got.Notes != "v2" {
		t.Error("Put did not replace")
	}
	if !db.Delete("swipe_right") {
		t.Error("Delete missed")
	}
	if db.Delete("swipe_right") {
		t.Error("Delete of absent entry reported true")
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	db := New()
	if err := db.Add(testEntry(t, "a")); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(testEntry(t, "a")); err == nil {
		t.Error("duplicate Add accepted")
	}
}

func TestValidation(t *testing.T) {
	db := New()
	bad := []Entry{
		{},
		{Name: "x"},
		{Name: "x", QueryText: "q"}, // invalid model
	}
	for i, e := range bad {
		if err := db.Put(e); err == nil {
			t.Errorf("bad entry %d accepted", i)
		}
	}
	// Name mismatch between entry and model.
	e := testEntry(t, "a")
	e.Model.Name = "b"
	if err := db.Put(e); err == nil {
		t.Error("name mismatch accepted")
	}
}

func TestListAndModelsSorted(t *testing.T) {
	db := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := db.Put(testEntry(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	list := db.List()
	if len(list) != 3 || list[0].Name != "alpha" || list[2].Name != "zeta" {
		t.Errorf("List order: %v", []string{list[0].Name, list[1].Name, list[2].Name})
	}
	models := db.Models()
	if len(models) != 3 || models[0].Name != "alpha" {
		t.Error("Models order wrong")
	}
}

func TestRoundTripJSON(t *testing.T) {
	db := New()
	_ = db.Put(testEntry(t, "swipe_right"))
	_ = db.Put(testEntry(t, "circle"))
	var buf bytes.Buffer
	if err := db.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"swipe_right"`) {
		t.Error("serialized JSON missing gesture")
	}
	db2 := New()
	if err := db2.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 2 {
		t.Fatalf("reloaded %d entries", db2.Len())
	}
	got, ok := db2.Get("swipe_right")
	if !ok {
		t.Fatal("swipe_right lost")
	}
	if len(got.Model.Windows) != 2 {
		t.Error("model windows lost")
	}
	if got.Model.Windows[0].Min[0] != -50 {
		t.Errorf("window bounds corrupted: %v", got.Model.Windows[0].Min)
	}
	if got.Model.StepDurations[0] != 300*time.Millisecond {
		t.Error("durations corrupted")
	}
}

func TestReadFromErrors(t *testing.T) {
	db := New()
	if err := db.Import(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := db.Import(strings.NewReader(`{"version": 99, "gestures": []}`)); err == nil {
		t.Error("future version accepted")
	}
	// A file with two entries of the same name is rejected. Build it by
	// serializing one entry and doubling the array element.
	var buf bytes.Buffer
	src := New()
	_ = src.Put(testEntry(t, "a"))
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	start := strings.Index(text, "[")
	end := strings.LastIndex(text, "]")
	element := strings.TrimSpace(text[start+1 : end])
	doubled := text[:start+1] + element + ",\n" + element + text[end:]
	if err := db.Import(strings.NewReader(doubled)); err == nil {
		t.Error("duplicate gesture names in file accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gestures.json")
	db := New()
	_ = db.Put(testEntry(t, "push"))
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != 1 {
		t.Errorf("loaded %d entries", db2.Len())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
