// Package gesturedb stores learned gesture definitions — models, generated
// query texts and bookkeeping — with JSON persistence. In the paper's
// architecture (Fig. 2) this is the "Gesture Database" between the learner
// and the CEP engine: gestures are learned once, stored, and deployed (or
// exchanged at runtime) from here.
package gesturedb

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"gesturecep/internal/learn"
)

// Entry is one stored gesture definition.
type Entry struct {
	// Name is the gesture identifier (unique per database).
	Name string `json:"name"`
	// QueryText is the generated CEP query in the paper's dialect.
	QueryText string `json:"query"`
	// Model is the merged learning result the query was generated from;
	// kept so patterns can be re-generalized or re-validated later without
	// re-recording samples.
	Model learn.Model `json:"model"`
	// Created is when the entry was stored.
	Created time.Time `json:"created"`
	// Notes holds free-form remarks (e.g. manual tuning applied).
	Notes string `json:"notes,omitempty"`
}

// Validate reports structural problems.
func (e Entry) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("gesturedb: entry without name")
	}
	if e.QueryText == "" {
		return fmt.Errorf("gesturedb: entry %q without query text", e.Name)
	}
	if err := e.Model.Validate(); err != nil {
		return fmt.Errorf("gesturedb: entry %q: %w", e.Name, err)
	}
	if e.Model.Name != e.Name {
		return fmt.Errorf("gesturedb: entry %q wraps model %q", e.Name, e.Model.Name)
	}
	return nil
}

// DB is an in-memory gesture store with JSON persistence. Safe for
// concurrent use.
type DB struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// New returns an empty database.
func New() *DB {
	return &DB{entries: make(map[string]Entry)}
}

// Put stores an entry, replacing any previous definition of the same
// gesture (the runtime-exchange workflow).
func (db *DB) Put(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Created.IsZero() {
		e.Created = time.Now().UTC()
	}
	db.mu.Lock()
	db.entries[e.Name] = e
	db.mu.Unlock()
	return nil
}

// Add stores an entry, failing if the gesture already exists.
func (db *DB) Add(e Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.entries[e.Name]; dup {
		return fmt.Errorf("gesturedb: gesture %q already stored", e.Name)
	}
	if e.Created.IsZero() {
		e.Created = time.Now().UTC()
	}
	db.entries[e.Name] = e
	return nil
}

// Get returns a stored entry.
func (db *DB) Get(name string) (Entry, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.entries[name]
	return e, ok
}

// Delete removes a gesture; it reports whether it existed.
func (db *DB) Delete(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.entries[name]
	delete(db.entries, name)
	return ok
}

// Len returns the number of stored gestures.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// List returns all entries sorted by name.
func (db *DB) List() []Entry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Entry, 0, len(db.entries))
	for _, e := range db.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Models returns all stored models sorted by name — the input to the
// cross-checking step (§3.3.3).
func (db *DB) Models() []learn.Model {
	entries := db.List()
	out := make([]learn.Model, len(entries))
	for i, e := range entries {
		out[i] = e.Model
	}
	return out
}

// fileFormat is the persisted representation.
type fileFormat struct {
	Version int     `json:"version"`
	Entries []Entry `json:"gestures"`
}

const currentVersion = 1

// Export serializes the database as JSON.
func (db *DB) Export(w io.Writer) error {
	f := fileFormat{Version: currentVersion, Entries: db.List()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("gesturedb: encode: %w", err)
	}
	return nil
}

// Import replaces the database content with the JSON document from r.
func (db *DB) Import(r io.Reader) error {
	var f fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("gesturedb: decode: %w", err)
	}
	if f.Version != currentVersion {
		return fmt.Errorf("gesturedb: unsupported file version %d", f.Version)
	}
	fresh := make(map[string]Entry, len(f.Entries))
	for _, e := range f.Entries {
		if err := e.Validate(); err != nil {
			return err
		}
		if _, dup := fresh[e.Name]; dup {
			return fmt.Errorf("gesturedb: duplicate gesture %q in file", e.Name)
		}
		fresh[e.Name] = e
	}
	db.mu.Lock()
	db.entries = fresh
	db.mu.Unlock()
	return nil
}

// Save writes the database to a file (atomically via a temp file rename).
func (db *DB) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("gesturedb: save: %w", err)
	}
	if err := db.Export(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gesturedb: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gesturedb: save: %w", err)
	}
	return nil
}

// Load reads a database file written by Save.
func Load(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gesturedb: load: %w", err)
	}
	defer f.Close()
	db := New()
	if err := db.Import(f); err != nil {
		return nil, err
	}
	return db, nil
}
