// gestured is the network ingestion daemon: it learns a set of gestures
// once, compiles each generated query into a shared plan, then serves the
// wire protocol on a TCP listener — remote clients attach sessions, stream
// kinect tuple batches in, and receive detections pushed back.
//
//	go run ./cmd/gestured -addr :7474
//	go run ./cmd/gestured -addr :7474 -shards 8 -policy drop-oldest -queue 128
//	go run ./cmd/gestured -addr :7474 -record-dir recordings
//	go run ./cmd/gestured -addr :7474 -record-dir recordings -retain 24h -compact-every 5m
//
// Drive it with cmd/gestureload. With -record-dir every session's tuple
// stream is additionally written to a durable stream store; replay or
// backfill it afterwards with cmd/gesturereplay (the recording archive also
// answers the wire protocol's backfill requests, so `gesturereplay -mode
// fleet-backfill` can evaluate this server's recordings remotely). -retain
// bounds how much recorded history the archive keeps: a background
// compactor drops and rewrites expired segments every -compact-every,
// synchronized against live readers and recorders.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

var gestureNames = kinect.DemoGestureNames()

func main() {
	var (
		addr      = flag.String("addr", ":7474", "TCP listen address")
		name      = flag.String("name", "", "server name reported in ping replies (how a cluster gateway labels this backend)")
		shards    = flag.Int("shards", 0, "ingestion shards (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 256, "per-shard queue depth")
		policy    = flag.String("policy", "block", "backpressure policy: block or drop-oldest")
		gestures  = flag.Int("gestures", 4, "gestures to learn and register (1-8)")
		seed      = flag.Int64("seed", 1, "trainer random seed")
		recordDir = flag.String("record-dir", "", "record every session's tuple stream into this stream-store directory (replay with cmd/gesturereplay)")
		retain    = flag.Duration("retain", 0, "drop recorded history older than this event-time age (0 keeps everything; needs -record-dir)")
		compactEv = flag.Duration("compact-every", time.Minute, "background compaction interval when -retain is set")
		adminAddr = flag.String("admin-addr", "", "HTTP admin plane listen address (/metrics, /metrics.json, /healthz, /readyz, /debug/pprof); empty disables")
		verbose   = flag.Bool("v", false, "print the per-shard metric table on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *name, *shards, *queue, *policy, *gestures, *seed, *recordDir, *retain, *compactEv, *adminAddr, *verbose); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run(addr, name string, shards, queue int, policyName string, gestures int, seed int64, recordDir string, retain, compactEvery time.Duration, adminAddr string, verbose bool) error {
	if gestures < 1 || gestures > len(gestureNames) {
		return fmt.Errorf("gestured: -gestures must be 1..%d", len(gestureNames))
	}
	if retain > 0 && recordDir == "" {
		return fmt.Errorf("gestured: -retain needs -record-dir")
	}
	if retain > 0 && compactEvery <= 0 {
		return fmt.Errorf("gestured: -compact-every must be positive")
	}
	pol, err := serve.ParsePolicy(policyName)
	if err != nil {
		return err
	}

	// Learn each gesture once; every remote session shares the plans.
	fmt.Printf("learning %d gestures ... ", gestures)
	start := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	learnStart := time.Now()
	trainer, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		return err
	}
	reg := serve.NewRegistry()
	specs := kinect.StandardGestures()
	for _, name := range gestureNames[:gestures] {
		samples, err := trainer.Samples(specs[name], 4, start, kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			return err
		}
		res, err := learn.Learn(name, samples, learn.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := reg.Register(name, res.QueryText); err != nil {
			return err
		}
	}
	fmt.Printf("done in %v\n", time.Since(learnStart).Round(time.Millisecond))

	m, err := serve.NewManager(serve.Config{Shards: shards, QueueDepth: queue, Policy: pol}, reg)
	if err != nil {
		return err
	}
	defer m.Close()
	srv := wire.NewServer(m)
	srv.Name = name
	ins := serve.NewInstruments()
	m.SetInstruments(ins)
	srv.BatchDecode = obs.NewHistogram()
	srv.Ingress = obs.NewHistogram()

	// Recording throughput counters for the admin plane: live recorders are
	// summed per scrape, released ones folded into the done totals.
	var recMu sync.Mutex
	liveRecs := make(map[*store.Recorder]struct{})
	var doneTuples, doneDropped, doneBytes atomic.Uint64

	var arch *store.Archive
	var comp *store.Compactor
	if recordDir != "" {
		arch = store.NewArchive(recordDir, store.Options{}, 0)
		defer arch.Close()
		// The archive doubles as the offline-backfill source: a remote
		// coordinator (gesturereplay -mode fleet-backfill, or a cluster
		// gateway) evaluates this server's registered plans over the
		// recordings through the wire protocol's history path.
		srv.BackfillSource = store.NewWireBackfillSource(reg, arch.OpenReader)
		if retain > 0 {
			comp = arch.NewCompactor(store.RetentionPolicy{MaxAge: retain})
			stop := comp.Start(compactEvery, func(err error) {
				log.Printf("gestured: compaction: %v", err)
			})
			defer stop()
			fmt.Printf("retaining %v of recorded history (compacting every %v)\n", retain, compactEvery)
		}
		srv.TapSessions = func(id string) (func(stream.Tuple), func(bool), error) {
			rec, err := arch.Record(id, kinect.Schema())
			if err != nil {
				return nil, nil, err
			}
			recMu.Lock()
			liveRecs[rec] = struct{}{}
			recMu.Unlock()
			return rec.Tap(), func(aborted bool) {
				recMu.Lock()
				delete(liveRecs, rec)
				recMu.Unlock()
				doneTuples.Add(rec.Recorded())
				doneDropped.Add(rec.Dropped())
				doneBytes.Add(rec.Writer().Bytes())
				end := arch.Release
				if aborted { // attach failed: drop the never-used recording
					end = arch.Abort
				}
				if err := end(rec); err != nil {
					log.Printf("gestured: recording %q: %v", rec.Stream(), err)
				}
			}, nil
		}
		fmt.Printf("recording sessions into %s\n", recordDir)
	}

	if adminAddr != "" {
		admin, err := obs.StartAdmin(adminAddr, obs.AdminConfig{
			Collect: func(w *obs.PromWriter) {
				m.Metrics().WriteProm(w)
				ins.WriteProm(w)
				w.Histogram("wire_batch_decode_seconds", "FrameBatch decode time of trace-sampled batches.", nil, srv.BatchDecode.Snapshot())
				w.Histogram("wire_ingress_seconds", "Client-send to server-decode latency of trace-sampled batches.", nil, srv.Ingress.Snapshot())
				if arch != nil {
					tuples, dropped, bytes := doneTuples.Load(), doneDropped.Load(), doneBytes.Load()
					recMu.Lock()
					for rec := range liveRecs {
						tuples += rec.Recorded()
						dropped += rec.Dropped()
						bytes += rec.Writer().Bytes()
					}
					recMu.Unlock()
					w.Counter("store_record_tuples_total", "Tuples appended to session recordings.", nil, tuples)
					w.Counter("store_record_dropped_total", "Tuples lost to full recording buffers.", nil, dropped)
					w.Counter("store_record_bytes_total", "Record bytes written to session recordings.", nil, bytes)
				}
				if comp != nil {
					comp.WriteProm(w)
				}
			},
			MetricsJSON: func() any {
				return struct {
					Serve  serve.Metrics            `json:"serve"`
					Stages map[string]obs.HistStats `json:"stages,omitempty"`
				}{m.Metrics(), ins.Stats()}
			},
			Healthy: func() error {
				if m.Closed() {
					return fmt.Errorf("gestured: manager closed")
				}
				return nil
			},
			Ready: func() error {
				if m.Closed() {
					return fmt.Errorf("gestured: manager closed")
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		defer admin.Close()
		fmt.Printf("admin plane on http://%s/metrics\n", admin.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()

	fmt.Printf("gestured listening on %s — %d plans, %d shards, policy %s, queue %d\n",
		addr, reg.Len(), m.Shards(), pol, queue)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("\n%v: shutting down\n", sig)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	mm := m.Metrics()
	fmt.Printf("served %s\n", mm)
	if verbose {
		fmt.Print(mm.Table())
	}
	return nil
}
