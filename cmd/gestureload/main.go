// gestureload drives a gestured server: it synthesizes user recordings,
// attaches N remote sessions over a handful of TCP connections, streams the
// tuples in batches, and reports end-to-end throughput plus detection
// latency percentiles (time from handing a detection's final tuple to the
// client library until the detection push arrives back).
//
//	go run ./cmd/gestureload -addr localhost:7474 -sessions 64
//	go run ./cmd/gestureload -addr localhost:7474 -sessions 256 -conns 8 -batch 32 -verify
//
// With -verify, sessions sharing a recording must report byte-identical
// detections — the remote twin of the serving determinism test; divergence
// exits non-zero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/obs"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7474", "gestured server address")
		sessions = flag.Int("sessions", 64, "concurrent remote sessions")
		conns    = flag.Int("conns", 4, "TCP connections to spread sessions over")
		batch    = flag.Int("batch", 64, "tuples per batch frame")
		repeats  = flag.Int("repeats", 3, "gesture performances per recording")
		seed     = flag.Int64("seed", 1, "base random seed")
		verify   = flag.Bool("verify", false, "require identical detections across sessions sharing a recording")
		metrics  = flag.Bool("metrics", false, "fetch and print the server's metrics table after the run (includes per-backend rows when driving a gateway)")
		trace    = flag.Int("trace", 0, "trace-sample one batch in N for end-to-end stage latency (0 disables; 1024 is a good production rate)")
		jsonOut  = flag.Bool("json", false, "emit the run summary as one JSON object on stdout (suppresses progress output)")
	)
	flag.Parse()
	if err := run(*addr, *sessions, *conns, *batch, *repeats, *seed, *verify, *metrics, *trace, *jsonOut); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

// runSummary is the -json output: one object per run, stable field names, so
// a CI step or a dashboard scraper can consume gestureload without parsing
// human-formatted text.
type runSummary struct {
	Addr           string         `json:"addr"`
	Sessions       int            `json:"sessions"`
	Conns          int            `json:"conns"`
	Batch          int            `json:"batch"`
	TraceEvery     int            `json:"trace_every,omitempty"`
	TuplesFed      uint64         `json:"tuples_fed"`
	ElapsedNs      time.Duration  `json:"elapsed_ns"`
	TuplesPerSec   float64        `json:"tuples_per_sec"`
	Detections     uint64         `json:"detections"`
	TupleDrops     uint64         `json:"tuple_drops"`
	DetectionDrops uint64         `json:"detection_drops"`
	LatencyP50     time.Duration  `json:"latency_p50_ns,omitempty"`
	LatencyP90     time.Duration  `json:"latency_p90_ns,omitempty"`
	LatencyP99     time.Duration  `json:"latency_p99_ns,omitempty"`
	LatencyMax     time.Duration  `json:"latency_max_ns,omitempty"`
	FlushRTT       *obs.HistStats `json:"flush_rtt,omitempty"`
	Verified       bool           `json:"verified,omitempty"`
	Diverged       int            `json:"diverged,omitempty"`
}

var gestureNames = kinect.DemoGestureNames()

// sessionResult carries one session's outcome back to the reporter.
type sessionResult struct {
	recording int
	counters  wire.SessionCounters
	detBytes  []byte
	latencies []time.Duration
	err       error
}

func run(addr string, sessions, conns, batch, repeats int, seed int64, verify, metrics bool, trace int, jsonOut bool) error {
	if sessions < 1 || conns < 1 || repeats < 1 {
		return fmt.Errorf("gestureload: -sessions, -conns and -repeats must be positive")
	}
	progressf := fmt.Printf
	if jsonOut {
		progressf = func(string, ...any) (int, error) { return 0, nil }
	}
	if conns > sessions {
		conns = sessions
	}
	start := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)

	// Synthesize a small pool of distinct recordings shared round-robin.
	pool := sessions
	if pool > 8 {
		pool = 8
	}
	profiles := []func() kinect.Profile{kinect.DefaultProfile, kinect.ChildProfile, kinect.TallProfile}
	recordings := make([][]stream.Tuple, pool)
	for i := range recordings {
		player, err := kinect.NewSimulator(profiles[i%len(profiles)](), kinect.DefaultNoise(), seed+int64(i)+100)
		if err != nil {
			return err
		}
		script := []kinect.ScriptItem{{Idle: 500 * time.Millisecond}}
		for r := 0; r < repeats; r++ {
			script = append(script,
				kinect.ScriptItem{Gesture: gestureNames[(i+r)%len(gestureNames)], Opts: kinect.PerformOpts{PathJitter: 15}},
				kinect.ScriptItem{Idle: 700 * time.Millisecond},
			)
		}
		rec, err := player.RunScript(script, start, nil)
		if err != nil {
			return err
		}
		recordings[i] = kinect.ToTuples(rec.Frames)
	}

	clients := make([]*wire.Client, conns)
	for i := range clients {
		cl, err := wire.Dial(addr)
		if err != nil {
			return fmt.Errorf("gestureload: dial %s: %w", addr, err)
		}
		defer cl.Close()
		if trace > 0 {
			cl.FlushRTT = obs.NewHistogram()
		}
		clients[i] = cl
	}

	progressf("driving %d sessions over %d connections (batch %d) against %s\n",
		sessions, conns, batch, addr)

	results := make([]sessionResult, sessions)
	var wg sync.WaitGroup
	feedStart := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = driveSession(clients[i%conns], fmt.Sprintf("load-%04d", i), batch, trace, i%pool, recordings[i%pool])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(feedStart)

	// Aggregate.
	var fed, dropped, detections, detDropped uint64
	var allLat []time.Duration
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return fmt.Errorf("gestureload: session %d: %w", i, r.err)
		}
		fed += r.counters.In
		dropped += r.counters.Dropped
		detections += r.counters.Detections
		detDropped += r.counters.DetectionsDropped
		allLat = append(allLat, r.latencies...)
	}
	summary := runSummary{
		Addr:           addr,
		Sessions:       sessions,
		Conns:          conns,
		Batch:          batch,
		TraceEvery:     trace,
		TuplesFed:      fed,
		ElapsedNs:      elapsed,
		TuplesPerSec:   float64(fed) / elapsed.Seconds(),
		Detections:     detections,
		TupleDrops:     dropped,
		DetectionDrops: detDropped,
	}
	progressf("\nfed %d tuples in %v → %.0f tuples/s aggregate end-to-end\n",
		fed, elapsed.Round(time.Millisecond), summary.TuplesPerSec)
	progressf("detections: %d (%.2f per session), tuple drops: %d, detection drops: %d\n",
		detections, float64(detections)/float64(sessions), dropped, detDropped)
	if len(allLat) > 0 {
		sort.Slice(allLat, func(i, j int) bool { return allLat[i] < allLat[j] })
		pct := func(p float64) time.Duration {
			idx := int(p * float64(len(allLat)-1))
			return allLat[idx].Round(10 * time.Microsecond)
		}
		summary.LatencyP50 = pct(0.50)
		summary.LatencyP90 = pct(0.90)
		summary.LatencyP99 = pct(0.99)
		summary.LatencyMax = allLat[len(allLat)-1].Round(10 * time.Microsecond)
		progressf("detection latency: p50 %v, p90 %v, p99 %v, max %v\n",
			summary.LatencyP50, summary.LatencyP90, summary.LatencyP99, summary.LatencyMax)
	}
	if trace > 0 {
		// Flush-ack RTT from the client library's histograms, merged across
		// connections — the client-side leg of the sampled trace path.
		var merged obs.HistSnapshot
		for _, cl := range clients {
			merged.Merge(cl.FlushRTT.Snapshot())
		}
		if merged.Count > 0 {
			st := merged.Stats()
			summary.FlushRTT = &st
			progressf("flush-ack RTT (1/%d sampled): p50 %v, p99 %v over %d flushes\n",
				trace, time.Duration(st.P50).Round(10*time.Microsecond),
				time.Duration(st.P99).Round(10*time.Microsecond), st.Count)
		}
	}

	if verify {
		diverged := 0
		reference := make(map[int][]byte)
		for i := range results {
			r := &results[i]
			want, ok := reference[r.recording]
			if !ok {
				reference[r.recording] = r.detBytes
				continue
			}
			if !bytes.Equal(want, r.detBytes) {
				diverged++
				progressf("DIVERGENCE: session %d disagrees with its recording-%d peers\n", i, r.recording)
			}
		}
		summary.Verified = diverged == 0
		summary.Diverged = diverged
		if diverged > 0 {
			if jsonOut {
				json.NewEncoder(os.Stdout).Encode(summary)
			}
			return fmt.Errorf("gestureload: %d sessions diverged", diverged)
		}
		progressf("verify: all sessions per recording byte-identical ✓\n")
	}

	if metrics && !jsonOut {
		mm, err := clients[0].Metrics()
		if err != nil {
			return fmt.Errorf("gestureload: fetching metrics: %w", err)
		}
		fmt.Printf("\nserver metrics: %s\n%s", mm, mm.Table())
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(summary)
	}
	return nil
}

// driveSession feeds one recording through one remote session, tracking the
// wall-clock send time of every tuple so a detection's latency can be
// measured when its final tuple's event time comes back.
func driveSession(cl *wire.Client, id string, batch, trace, recording int, tuples []stream.Tuple) sessionResult {
	res := sessionResult{recording: recording}
	sendTimes := make(map[int64]time.Time, len(tuples))
	var mu sync.Mutex
	rs, err := cl.Attach(id, wire.AttachOptions{
		BatchSize:  batch,
		TraceEvery: trace,
		OnDetection: func(d anduin.Detection) {
			mu.Lock()
			sent, ok := sendTimes[d.End.UnixNano()]
			mu.Unlock()
			if ok {
				res.latencies = append(res.latencies, time.Since(sent))
			}
		},
	})
	if err != nil {
		res.err = err
		return res
	}
	for i := range tuples {
		mu.Lock()
		sendTimes[tuples[i].Ts.UnixNano()] = time.Now()
		mu.Unlock()
		if err := rs.FeedTuple(tuples[i]); err != nil {
			res.err = err
			return res
		}
	}
	counters, err := rs.Detach()
	if err != nil {
		res.err = err
		return res
	}
	res.counters = counters
	dets := rs.TakeDetections()
	res.detBytes, res.err = wire.AppendDetections(nil, 0, 0, dets)
	return res
}
