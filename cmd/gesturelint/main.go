// Command gesturelint runs the internal/lint analyzer suite: frame-pool
// ownership (framepool), documented lock orders (lockorder), atomics-only
// counter fields (atomicfield), structured logging (obslog) and
// allocation-free hot paths (hotpathalloc), plus the stale-manifest drift
// check for hotpaths.txt.
//
// Standalone (the CI gate):
//
//	go run ./cmd/gesturelint ./...
//	go run ./cmd/gesturelint -only framepool,lockorder ./internal/...
//
// As a go vet tool (the unitchecker protocol — type information comes
// from the build cache's export data instead of a from-source re-check,
// so this is the fast path once built):
//
//	go build -o bin/gesturelint ./cmd/gesturelint
//	go vet -vettool=$PWD/bin/gesturelint ./...
//
// Exit status: 0 clean, 1 findings or usage error (standalone), 2
// findings (vet protocol, matching cmd/vet convention).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gesturecep/internal/lint"
)

func main() {
	args := os.Args[1:]
	// The three spellings cmd/go uses to drive a vet tool.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		// Identity handshake: cmd/go requires the exact shape
		// "<base> version devel ... buildID=<id>" and folds the ID into
		// its cache key, so hashing the binary itself invalidates cached
		// vet results whenever the analyzers change.
		fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), selfID())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No analyzer flags are exposed through the vet protocol.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// selfID hashes this executable for the -V=full handshake.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("gesturelint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	fs.Parse(args)

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesturelint:", err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesturelint:", err)
		return 1
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesturelint:", err)
		return 1
	}
	// The manifest drift check rides with hotpathalloc.
	for _, a := range analyzers {
		if a.Name == "hotpathalloc" {
			diags = append(diags, lint.StaleManifest(pkgs)...)
			break
		}
	}
	if len(pkgs) > 0 {
		for _, d := range diags {
			fmt.Println(lint.FormatDiagnostic(pkgs[0].Fset, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gesturelint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig is the per-package JSON cmd/go hands a vet tool (the subset
// gesturelint needs; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit implements one unit of the go vet protocol: type-check this
// package against the export data cmd/go already compiled, run the
// suite, report findings on stderr.
func runUnit(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesturelint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gesturelint: parsing", cfgPath+":", err)
		return 1
	}
	// cmd/go declares the vetx facts file as an output of the vet action;
	// gesturelint's analyzers need no cross-package facts, so it is empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "gesturelint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fn := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "gesturelint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, cfg.Compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "gesturelint:", err)
		return 1
	}
	pkg := &lint.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gesturelint:", err)
		return 1
	}
	diags = append(diags, lint.StaleManifest([]*lint.Package{pkg})...)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, lint.FormatDiagnostic(fset, d))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
