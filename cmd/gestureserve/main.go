// gestureserve demonstrates the multi-tenant detection runtime: it learns a
// handful of gestures once, compiles each generated query into a shared plan,
// then serves N concurrent simulated users — every session is an independent
// engine fed through the sharded ingestion layer — and reports aggregate
// throughput.
//
//	go run ./cmd/gestureserve -sessions 64
//	go run ./cmd/gestureserve -sessions 256 -shards 8 -policy drop-oldest
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
)

func main() {
	var (
		sessions = flag.Int("sessions", 64, "number of concurrent simulated users")
		shards   = flag.Int("shards", 0, "ingestion shards (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 256, "per-shard queue depth")
		policy   = flag.String("policy", "block", "backpressure policy: block or drop-oldest")
		gestures = flag.Int("gestures", 4, "gestures to learn and deploy per session (1-8)")
		repeats  = flag.Int("repeats", 3, "gesture performances per simulated user")
		seed     = flag.Int64("seed", 1, "base random seed")
		verbose  = flag.Bool("v", false, "print the per-shard metric table")
	)
	flag.Parse()
	if err := run(*sessions, *shards, *queue, *policy, *gestures, *repeats, *seed, *verbose); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

var gestureNames = kinect.DemoGestureNames()

func run(sessions, shards, queue int, policyName string, gestures, repeats int, seed int64, verbose bool) error {
	if sessions < 1 {
		return fmt.Errorf("gestureserve: need at least one session")
	}
	if gestures < 1 || gestures > len(gestureNames) {
		return fmt.Errorf("gestureserve: -gestures must be 1..%d", len(gestureNames))
	}
	if repeats < 1 {
		return fmt.Errorf("gestureserve: -repeats must be positive")
	}
	pol, err := serve.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	start := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)

	// 1. Learn each gesture once from a trainer user and register the
	// generated query as a shared plan.
	fmt.Printf("learning %d gestures ... ", gestures)
	learnStart := time.Now()
	trainer, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		return err
	}
	reg := serve.NewRegistry()
	specs := kinect.StandardGestures()
	for _, name := range gestureNames[:gestures] {
		samples, err := trainer.Samples(specs[name], 4, start, kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			return err
		}
		res, err := learn.Learn(name, samples, learn.DefaultConfig())
		if err != nil {
			return err
		}
		if _, err := reg.Register(name, res.QueryText); err != nil {
			return err
		}
	}
	fmt.Printf("done in %v (compiled once, shared by all sessions)\n", time.Since(learnStart).Round(time.Millisecond))

	// 2. Synthesize user recordings: a small pool of distinct playbacks,
	// shared round-robin so huge fleets don't need gigabytes of frames.
	profiles := []func() kinect.Profile{kinect.DefaultProfile, kinect.ChildProfile, kinect.TallProfile}
	pool := sessions
	if pool > 8 {
		pool = 8
	}
	recordings := make([][]stream.Tuple, pool)
	for i := range recordings {
		player, err := kinect.NewSimulator(profiles[i%len(profiles)](), kinect.DefaultNoise(), seed+int64(i)+100)
		if err != nil {
			return err
		}
		script := []kinect.ScriptItem{{Idle: 500 * time.Millisecond}}
		for r := 0; r < repeats; r++ {
			script = append(script,
				kinect.ScriptItem{Gesture: gestureNames[(i+r)%gestures], Opts: kinect.PerformOpts{PathJitter: 15}},
				kinect.ScriptItem{Idle: 700 * time.Millisecond},
			)
		}
		rec, err := player.RunScript(script, start, nil)
		if err != nil {
			return err
		}
		// Convert once; tuples are read-only downstream, so all sessions
		// sharing a recording can feed the same slice.
		recordings[i] = kinect.ToTuples(rec.Frames)
	}

	// 3. Spin up the manager and one session per simulated user; every
	// session deploys all learned plans.
	m, err := serve.NewManager(serve.Config{Shards: shards, QueueDepth: queue, Policy: pol}, reg)
	if err != nil {
		return err
	}
	defer m.Close()
	sess := make([]*serve.Session, sessions)
	for i := range sess {
		s, err := m.CreateSession(fmt.Sprintf("user-%04d", i))
		if err != nil {
			return err
		}
		sess[i] = s
	}
	fmt.Printf("serving %d sessions × %d queries on %d shards (policy %s, queue %d)\n",
		sessions, reg.Len(), m.Shards(), pol, queue)

	// 4. Feed all users concurrently and measure aggregate throughput.
	var wg sync.WaitGroup
	feedStart := time.Now()
	feedErrs := make(chan error, sessions)
	for i, s := range sess {
		wg.Add(1)
		go func(s *serve.Session, tuples []stream.Tuple) {
			defer wg.Done()
			for _, tp := range tuples {
				if err := s.FeedTuple(tp); err != nil {
					feedErrs <- err
					return
				}
			}
		}(s, recordings[i%pool])
	}
	wg.Wait()
	m.Flush()
	elapsed := time.Since(feedStart)
	select {
	case err := <-feedErrs:
		return err
	default:
	}

	// 5. Report.
	mm := m.Metrics()
	perSession := float64(mm.Detections) / float64(sessions)
	fmt.Printf("\nfed %d tuples in %v → %.0f tuples/s aggregate (%.1f µs/tuple ingest latency)\n",
		mm.Enqueued, elapsed.Round(time.Millisecond),
		float64(mm.Processed)/elapsed.Seconds(),
		float64(elapsed.Microseconds())/float64(mm.Enqueued/uint64(sessions)))
	fmt.Printf("detections: %d total (%.2f per session), drops: %d\n", mm.Detections, perSession, mm.Dropped)
	if verbose {
		fmt.Println()
		fmt.Print(mm.Table())
	}
	if mm.Detections == 0 {
		fmt.Fprintln(os.Stderr, "warning: no detections — check learning parameters")
	}
	return nil
}
