// Command gesturelearn runs the paper's learning pipeline (§3.3) on
// simulated recordings of a gesture and prints the generated CEP query.
// It stands in for the interactive learning tool of Fig. 2, with the
// Kinect camera replaced by the deterministic simulator.
//
// Usage:
//
//	gesturelearn -gesture swipe_right -samples 4 -db gestures.json
//
// The generated query is printed to stdout; with -db the gesture is also
// stored in (or added to) a gesture database file that gesturedetect can
// deploy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gesturecep/internal/gesturedb"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
)

func main() {
	var (
		gestureName = flag.String("gesture", kinect.GestureSwipeRight,
			"standard gesture to learn ("+strings.Join(kinect.GestureNames(), ", ")+")")
		samples  = flag.Int("samples", 4, "number of training samples to record")
		seed     = flag.Int64("seed", 1, "simulator random seed")
		jitter   = flag.Float64("jitter", 25, "per-sample path variation (mm)")
		fraction = flag.Float64("maxdist", 0.22, "relative max_dist sampling threshold (fraction of path deviation)")
		scale    = flag.Float64("scale", 1.3, "window generalization scale factor")
		dbPath   = flag.String("db", "", "gesture database JSON file to store the result in")
		user     = flag.String("user", "adult", "training user: adult, child or tall")
	)
	flag.Parse()

	if err := run(*gestureName, *samples, *seed, *jitter, *fraction, *scale, *dbPath, *user); err != nil {
		fmt.Fprintln(os.Stderr, "gesturelearn:", err)
		os.Exit(1)
	}
}

func profileByName(name string) (kinect.Profile, error) {
	switch name {
	case "adult":
		return kinect.DefaultProfile(), nil
	case "child":
		return kinect.ChildProfile(), nil
	case "tall":
		return kinect.TallProfile(), nil
	default:
		return kinect.Profile{}, fmt.Errorf("unknown user %q (want adult, child or tall)", name)
	}
}

func run(gestureName string, samples int, seed int64, jitter, fraction, scale float64, dbPath, user string) error {
	spec, ok := kinect.StandardGestures()[gestureName]
	if !ok {
		return fmt.Errorf("unknown gesture %q; available: %s", gestureName, strings.Join(kinect.GestureNames(), ", "))
	}
	profile, err := profileByName(user)
	if err != nil {
		return err
	}
	sim, err := kinect.NewSimulator(profile, kinect.DefaultNoise(), seed)
	if err != nil {
		return err
	}
	fmt.Printf("recording %d samples of %q (user %s)...\n", samples, gestureName, profile.Name)
	recorded, err := sim.Samples(spec, samples, time.Now(), kinect.PerformOpts{PathJitter: jitter})
	if err != nil {
		return err
	}

	cfg := learn.DefaultConfig()
	cfg.Sampler.RelativeFraction = fraction
	cfg.ScaleFactor = scale
	learner, err := learn.NewLearner(gestureName, cfg)
	if err != nil {
		return err
	}
	for i, s := range recorded {
		warns, err := learner.AddSample(s)
		if err != nil {
			return fmt.Errorf("sample %d: %w", i, err)
		}
		for _, w := range warns {
			fmt.Printf("warning: %s\n", w)
		}
	}
	res, err := learner.Result()
	if err != nil {
		return err
	}

	fmt.Printf("\nlearned %d pose windows from %d samples:\n", len(res.Model.Windows), res.Model.Samples)
	for i, w := range res.Model.Windows {
		c, h := w.Center(), w.HalfWidth()
		fmt.Printf("  pose %d: center (%.0f, %.0f, %.0f)  ±(%.0f, %.0f, %.0f)\n",
			i, c[0], c[1], c[2], h[0], h[1], h[2])
	}
	fmt.Printf("\ngenerated query:\n\n%s\n", res.QueryText)

	if dbPath != "" {
		db := gesturedb.New()
		if _, err := os.Stat(dbPath); err == nil {
			db, err = gesturedb.Load(dbPath)
			if err != nil {
				return err
			}
		}
		if err := db.Put(gesturedb.Entry{Name: gestureName, QueryText: res.QueryText, Model: res.Model}); err != nil {
			return err
		}
		if err := db.Save(dbPath); err != nil {
			return err
		}
		fmt.Printf("stored in %s (%d gestures)\n", dbPath, db.Len())
	}
	return nil
}
