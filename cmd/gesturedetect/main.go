// Command gesturedetect deploys gesture queries (from a gesture database
// file written by gesturelearn, or learned on the fly) and runs a simulated
// session against them, printing every detection and the final
// precision/recall evaluation — the testing phase of the paper's workflow
// (§3.1).
//
// Usage:
//
//	gesturedetect -db gestures.json -script swipe_right,push,circle -user child
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/detect"
	"gesturecep/internal/gesturedb"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/transform"
)

func main() {
	var (
		dbPath = flag.String("db", "", "gesture database JSON file (empty: learn the scripted gestures on the fly)")
		script = flag.String("script", "swipe_right,push,swipe_right",
			"comma-separated gestures to perform in the test session")
		user = flag.String("user", "adult", "test user: adult, child or tall")
		seed = flag.Int64("seed", 42, "simulator random seed")
		reps = flag.Int("reps", 1, "repetitions of the whole script")
	)
	flag.Parse()
	if err := run(*dbPath, *script, *user, *seed, *reps); err != nil {
		fmt.Fprintln(os.Stderr, "gesturedetect:", err)
		os.Exit(1)
	}
}

func run(dbPath, script, user string, seed int64, reps int) error {
	var profile kinect.Profile
	switch user {
	case "adult":
		profile = kinect.DefaultProfile()
	case "child":
		profile = kinect.ChildProfile()
	case "tall":
		profile = kinect.TallProfile()
	default:
		return fmt.Errorf("unknown user %q", user)
	}
	gestures := strings.Split(script, ",")
	for i := range gestures {
		gestures[i] = strings.TrimSpace(gestures[i])
	}

	// Collect the query texts: from the database file, or learned ad hoc.
	texts := map[string]string{}
	if dbPath != "" {
		db, err := gesturedb.Load(dbPath)
		if err != nil {
			return err
		}
		for _, e := range db.List() {
			texts[e.Name] = e.QueryText
		}
		fmt.Printf("loaded %d gestures from %s\n", len(texts), dbPath)
	} else {
		trainSim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed+1000)
		if err != nil {
			return err
		}
		specs := kinect.StandardGestures()
		distinct := map[string]bool{}
		for _, g := range gestures {
			distinct[g] = true
		}
		for g := range distinct {
			spec, ok := specs[g]
			if !ok {
				return fmt.Errorf("unknown gesture %q", g)
			}
			samples, err := trainSim.Samples(spec, 4, time.Now(), kinect.PerformOpts{PathJitter: 25})
			if err != nil {
				return err
			}
			res, err := learn.Learn(g, samples, learn.DefaultConfig())
			if err != nil {
				return err
			}
			texts[g] = res.QueryText
		}
		fmt.Printf("learned %d gestures on the fly (4 samples each)\n", len(texts))
	}

	h, err := detect.NewHarness(transform.DefaultConfig())
	if err != nil {
		return err
	}
	names := make([]string, 0, len(texts))
	for n := range texts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := h.Deploy(texts[n]); err != nil {
			return fmt.Errorf("deploying %q: %w", n, err)
		}
	}
	h.Engine.Subscribe(func(d anduin.Detection) {
		fmt.Printf("  [%s] detected %q (gesture spanned %v)\n",
			d.End.Format("15:04:05.000"), d.Gesture, d.Duration().Round(10*time.Millisecond))
	})

	// Build and run the test session.
	sim, err := kinect.NewSimulator(profile, kinect.DefaultNoise(), seed)
	if err != nil {
		return err
	}
	var items []kinect.ScriptItem
	items = append(items, kinect.ScriptItem{Idle: time.Second})
	for r := 0; r < reps; r++ {
		for _, g := range gestures {
			items = append(items,
				kinect.ScriptItem{Gesture: g, Opts: kinect.PerformOpts{PathJitter: 18}},
				kinect.ScriptItem{Idle: 1500 * time.Millisecond},
			)
		}
	}
	sess, err := sim.RunScript(items, time.Now(), nil)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d frames (%v of %s sensor data, user %s)...\n",
		len(sess.Frames), sess.Duration().Round(time.Second), "30 Hz", profile.Name)
	outcome, err := h.RunAndEvaluate(sess, detect.DefaultTolerance)
	if err != nil {
		return err
	}

	fmt.Println("\nevaluation:")
	keys := make([]string, 0, len(outcome))
	for k := range outcome {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-16s %s\n", k, outcome[k])
	}
	all := detect.Overall(outcome)
	fmt.Printf("  %-16s %s (mean latency %v)\n", "overall", all, all.MeanLatency().Round(time.Millisecond))
	return nil
}
