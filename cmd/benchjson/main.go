// benchjson turns `go test -bench` output into one stable JSON document,
// for the continuous-bench trajectory: CI (and developers) pipe the
// benchmark run through it and commit the result as BENCH_gateway.json,
// so performance history lives in git next to the code that produced it.
//
//	go test -run '^$' -bench 'GatewayProxy|ServeSessions|RecordAppend|ReplayThroughput' \
//	    -benchmem ./... | go run ./cmd/benchjson > BENCH_gateway.json
//
// Custom metrics reported via b.ReportMetric (tuples/s, MB/s) are kept
// alongside ns/op, B/op and allocs/op. When both BenchmarkGatewayProxy and
// BenchmarkGatewayProxyTraced are present, the document also carries the
// observability overhead of the traced run as a percentage — the number
// the ≤3% acceptance bar is checked against.
//
// With -against, the fresh document is additionally compared to a committed
// baseline and the exit status becomes a regression gate:
//
//	go test -run '^$' -bench 'GatewayProxy' -benchmem ./internal/cluster \
//	    | go run ./cmd/benchjson -against BENCH_gateway.json > /tmp/fresh.json
//
// exits 1 when GatewayProxy loses more than 15% tuples/s or more than
// doubles its allocs/op versus the baseline. Throughput on other shared
// benchmarks is reported to stderr but never gates: only the proxy path has
// an acceptance bar, and allocs/op is the noise-free half of it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchResult is one benchmark line, normalized.
type benchResult struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// overhead compares a traced benchmark against its untraced base.
type overhead struct {
	Base     string  `json:"base"`
	Traced   string  `json:"traced"`
	BaseNs   float64 `json:"base_ns_per_op"`
	TracedNs float64 `json:"traced_ns_per_op"`
	Percent  float64 `json:"percent"`
}

// document is the full output: environment header plus every result.
type document struct {
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
	Overhead   *overhead     `json:"observability_overhead,omitempty"`
}

func main() {
	against := flag.String("against", "", "baseline BENCH json to gate the fresh run against (exit 1 on GatewayProxy regression)")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *against == "" {
		return
	}
	base, err := loadDoc(*against)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -against: %v\n", err)
		os.Exit(1)
	}
	lines, failed := compare(doc, base)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, "benchjson: "+l)
	}
	if failed {
		os.Exit(1)
	}
}

func loadDoc(path string) (*document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &document{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return doc, nil
}

// Gate thresholds for compare: the proxied data path may lose at most 15%
// of its tuples/s and at most double its allocs/op against the baseline.
const (
	gatedBench     = "GatewayProxy"
	maxTuplesDrop  = 0.15
	maxAllocsRatio = 2.0
)

// compare reports the fresh run against the committed baseline. Only
// gatedBench decides the exit status; every other benchmark present in both
// documents gets an informational throughput delta.
func compare(fresh, base *document) (lines []string, failed bool) {
	find := func(doc *document, name string) *benchResult {
		for i := range doc.Benchmarks {
			if doc.Benchmarks[i].Name == name {
				return &doc.Benchmarks[i]
			}
		}
		return nil
	}
	fb, bb := find(fresh, gatedBench), find(base, gatedBench)
	switch {
	case bb == nil:
		lines = append(lines, fmt.Sprintf("%s missing from baseline; nothing to gate against", gatedBench))
	case fb == nil:
		lines = append(lines, fmt.Sprintf("FAIL: gated benchmark %s missing from the fresh run", gatedBench))
		failed = true
	default:
		if bt, ft := bb.Metrics["tuples/s"], fb.Metrics["tuples/s"]; bt > 0 {
			drop := (bt - ft) / bt
			verdict := "ok"
			if drop > maxTuplesDrop {
				verdict = "FAIL"
				failed = true
			}
			lines = append(lines, fmt.Sprintf("%s: %s tuples/s %.0f -> %.0f (%+.1f%%, gate -%.0f%%)",
				verdict, gatedBench, bt, ft, -drop*100, maxTuplesDrop*100))
		}
		if ba, fa := bb.Metrics["allocs/op"], fb.Metrics["allocs/op"]; ba > 0 {
			verdict := "ok"
			if fa > ba*maxAllocsRatio {
				verdict = "FAIL"
				failed = true
			}
			lines = append(lines, fmt.Sprintf("%s: %s allocs/op %.0f -> %.0f (gate %.0fx)",
				verdict, gatedBench, ba, fa, maxAllocsRatio))
		}
	}
	for i := range fresh.Benchmarks {
		fr := &fresh.Benchmarks[i]
		if fr.Name == gatedBench {
			continue
		}
		br := find(base, fr.Name)
		if br == nil {
			continue
		}
		for _, unit := range []string{"tuples/s", "MB/s"} {
			if bv, fv := br.Metrics[unit], fr.Metrics[unit]; bv > 0 && fv > 0 {
				lines = append(lines, fmt.Sprintf("info: %s %s %.0f -> %.0f (%+.1f%%)",
					fr.Name, unit, bv, fv, (fv-bv)/bv*100))
				break
			}
		}
	}
	return lines, failed
}

func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBench(line, pkg)
			if err != nil {
				return nil, err
			}
			if res != nil {
				doc.Benchmarks = append(doc.Benchmarks, *res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	doc.Overhead = computeOverhead(doc.Benchmarks)
	return doc, nil
}

// parseBench parses one result line:
//
//	BenchmarkGatewayProxy-8  3522  339911 ns/op  353033 tuples/s  129693 B/op  1604 allocs/op
//
// Returns nil (no error) for non-result Benchmark lines such as the bare
// function name `go test` echoes while a benchmark is still running.
func parseBench(line, pkg string) (*benchResult, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return nil, nil
	}
	res := &benchResult{Pkg: pkg, Metrics: map[string]float64{}}
	res.Name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(res.Name, '-'); i >= 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	var err error
	if res.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return nil, fmt.Errorf("iterations in %q: %v", line, err)
	}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q in %q: %v", fields[i], line, err)
		}
		if unit := fields[i+1]; unit == "ns/op" {
			res.NsPerOp = val
		} else {
			res.Metrics[unit] = val
		}
	}
	if len(res.Metrics) == 0 {
		res.Metrics = nil
	}
	return res, nil
}

// computeOverhead finds the GatewayProxy / GatewayProxyTraced pair.
func computeOverhead(results []benchResult) *overhead {
	var base, traced *benchResult
	for i := range results {
		switch results[i].Name {
		case "GatewayProxy":
			base = &results[i]
		case "GatewayProxyTraced":
			traced = &results[i]
		}
	}
	if base == nil || traced == nil || base.NsPerOp == 0 {
		return nil
	}
	return &overhead{
		Base:     base.Name,
		Traced:   traced.Name,
		BaseNs:   base.NsPerOp,
		TracedNs: traced.NsPerOp,
		Percent:  (traced.NsPerOp - base.NsPerOp) / base.NsPerOp * 100,
	}
}
