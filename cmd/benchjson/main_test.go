package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gesturecep/internal/cluster
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkGatewayProxy-8   	    3921	    305571 ns/op	    405103 tuples/s	  101819 B/op	     183 allocs/op
BenchmarkGatewayProxyTraced-8   	    3857	    308654 ns/op	    400893 tuples/s	  101933 B/op	     183 allocs/op
PASS
`

func parseSample(t *testing.T, text string) *document {
	t.Helper()
	doc, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBenchLines(t *testing.T) {
	doc := parseSample(t, sampleBench)
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	gp := doc.Benchmarks[0]
	if gp.Name != "GatewayProxy" || gp.Procs != 8 || gp.Iterations != 3921 {
		t.Errorf("GatewayProxy parsed as %+v", gp)
	}
	if gp.Metrics["tuples/s"] != 405103 || gp.Metrics["allocs/op"] != 183 {
		t.Errorf("GatewayProxy metrics = %v", gp.Metrics)
	}
	if doc.Overhead == nil || doc.Overhead.Percent < 0 || doc.Overhead.Percent > 5 {
		t.Errorf("overhead = %+v, want small positive percent", doc.Overhead)
	}
}

// mutate returns a copy of the sample document with GatewayProxy's gated
// metrics overridden.
func mutated(t *testing.T, tuples, allocs float64) *document {
	doc := parseSample(t, sampleBench)
	doc.Benchmarks[0].Metrics["tuples/s"] = tuples
	doc.Benchmarks[0].Metrics["allocs/op"] = allocs
	return doc
}

func TestCompareGates(t *testing.T) {
	base := parseSample(t, sampleBench)
	cases := []struct {
		name           string
		tuples, allocs float64
		wantFail       bool
	}{
		{"unchanged", 405103, 183, false},
		{"within noise", 380000, 200, false},
		{"tuples at the 15% edge", 405103 * 0.86, 183, false},
		{"tuples regressed", 405103 * 0.80, 183, true},
		{"allocs doubled plus one", 405103, 367, true},
		{"allocs at 2x exactly", 405103, 366, false},
		{"back to pre-pooling", 359198, 1604, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lines, failed := compare(mutated(t, tc.tuples, tc.allocs), base)
			if failed != tc.wantFail {
				t.Fatalf("failed = %v, want %v; report:\n%s", failed, tc.wantFail, strings.Join(lines, "\n"))
			}
		})
	}
}

func TestCompareMissingGatedBench(t *testing.T) {
	base := parseSample(t, sampleBench)
	fresh := parseSample(t, sampleBench)
	fresh.Benchmarks = fresh.Benchmarks[1:] // drop GatewayProxy
	if _, failed := compare(fresh, base); !failed {
		t.Fatal("fresh run without the gated benchmark passed the gate")
	}
	// A baseline without the gated benchmark cannot gate, so it must not fail.
	if _, failed := compare(parseSample(t, sampleBench), fresh); failed {
		t.Fatal("baseline without the gated benchmark failed the gate")
	}
}
