// Command gesturebench runs the reproduction experiments E1–E9 (see
// DESIGN.md and EXPERIMENTS.md) and prints their result tables — the
// regeneration harness for every figure and quantified claim of the paper.
//
// Usage:
//
//	gesturebench            # all experiments
//	gesturebench -only E3   # one experiment
//	gesturebench -seed 7    # different synthetic workload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gesturecep/internal/experiments"
)

func main() {
	var (
		seed = flag.Int64("seed", 1, "workload random seed")
		only = flag.String("only", "", "run a single experiment (E1..E10)")
	)
	flag.Parse()
	if err := run(*seed, strings.ToUpper(*only)); err != nil {
		fmt.Fprintln(os.Stderr, "gesturebench:", err)
		os.Exit(1)
	}
}

func run(seed int64, only string) error {
	type experiment struct {
		id string
		fn func() (experiments.Table, error)
	}
	exps := []experiment{
		{"E1", func() (experiments.Table, error) {
			tab, queryText, err := experiments.E1SwipeRight(seed)
			if err != nil {
				return tab, err
			}
			trace, err := experiments.E1Trace(seed, 12)
			if err != nil {
				return tab, err
			}
			fmt.Println(trace.String())
			fmt.Println("generated query (compare Fig. 1):")
			fmt.Println(queryText)
			return tab, nil
		}},
		{"E2", func() (experiments.Table, error) { return experiments.E2SampleEfficiency(8, seed) }},
		{"E3", func() (experiments.Table, error) { return experiments.E3TransformAblation(seed) }},
		{"E4", func() (experiments.Table, error) { return experiments.E4MaxDistSweep(seed) }},
		{"E5", func() (experiments.Table, error) { return experiments.E5ScalingOverlap(seed) }},
		{"E6", func() (experiments.Table, error) { return experiments.E6EngineThroughput(seed) }},
		{"E7", func() (experiments.Table, error) { return experiments.E7Optimization(seed) }},
		{"E8", func() (experiments.Table, error) { return experiments.E8Baselines(seed) }},
		{"E9", func() (experiments.Table, error) { return experiments.E9Recorder(seed) }},
		{"E10", func() (experiments.Table, error) { return experiments.E10WindowMode(seed) }},
	}

	ran := 0
	for _, e := range exps {
		if only != "" && e.id != only {
			continue
		}
		start := time.Now()
		tab, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", only)
	}
	return nil
}
