// gesturereplay drives the durable stream store from the command line: it
// lists recorded streams, replays a recording back through a serving
// session (at wall-clock, scaled or maximum speed), or backfills compiled
// gesture plans over recorded history offline — the batch half of the
// lambda-style live+historical system.
//
//	go run ./cmd/gesturereplay -dir recordings -list
//	go run ./cmd/gesturereplay -dir recordings -stream user-1 -mode replay -speed 0
//	go run ./cmd/gesturereplay -dir recordings -stream user-1 -mode replay -speed 1
//	go run ./cmd/gesturereplay -dir recordings -stream user-1 -mode backfill -gestures 8
//
// Plans are learned from the same deterministic trainer gestured uses, so
// running with the same -gestures/-seed evaluates the identical compiled
// queries the live server served — replaying a stream recorded by
// `gestured -record-dir` reproduces its detections byte for byte. Raising
// -gestures beyond what the server had deployed is the offline-backfill
// workflow: new queries evaluated over old data.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
)

var gestureNames = kinect.DemoGestureNames()

func main() {
	var (
		dir       = flag.String("dir", "recordings", "stream-store directory")
		name      = flag.String("stream", "", "recorded stream to replay or backfill")
		mode      = flag.String("mode", "replay", "replay (through a serving session) or backfill (offline plan evaluation)")
		list      = flag.Bool("list", false, "list recorded streams and exit (reads and CRC-verifies every record)")
		speed     = flag.Float64("speed", 0, "replay speed: 0 = max, 1 = wall clock, 2 = double speed")
		gestures  = flag.Int("gestures", 4, "gestures to learn and evaluate (1-8)")
		seed      = flag.Int64("seed", 1, "trainer random seed (match the recording server's)")
		adminAddr = flag.String("admin-addr", "", "HTTP admin plane listen address during replay (/metrics with replay progress, /debug/pprof); empty disables")
		verbose   = flag.Bool("v", false, "print every detection")
	)
	flag.Parse()
	if err := run(*dir, *name, *mode, *list, *speed, *gestures, *seed, *adminAddr, *verbose); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

func run(dir, name, mode string, list bool, speed float64, gestures int, seed int64, adminAddr string, verbose bool) error {
	if list {
		return listStreams(dir)
	}
	if name == "" {
		return fmt.Errorf("gesturereplay: -stream is required (or -list)")
	}
	if gestures < 1 || gestures > len(gestureNames) {
		return fmt.Errorf("gesturereplay: -gestures must be 1..%d", len(gestureNames))
	}
	reg, err := learnPlans(gestures, seed)
	if err != nil {
		return err
	}
	switch mode {
	case "replay":
		return replay(dir, name, reg, speed, adminAddr, verbose)
	case "backfill":
		return backfill(dir, name, reg, verbose)
	default:
		return fmt.Errorf("gesturereplay: unknown mode %q (want replay or backfill)", mode)
	}
}

func listStreams(dir string) error {
	names, err := store.ListStreams(dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		fmt.Printf("no recorded streams under %s\n", dir)
		return nil
	}
	fmt.Printf("%-24s %10s %12s %10s\n", "stream", "records", "tuples", "span")
	for _, n := range names {
		r, err := store.OpenReader(dir, n)
		if err != nil {
			return err
		}
		var span time.Duration
		var firstTs, lastTs time.Time
		for {
			tuples, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return fmt.Errorf("gesturereplay: stream %q: %w", n, err)
			}
			if len(tuples) > 0 {
				if firstTs.IsZero() {
					firstTs = tuples[0].Ts
				}
				lastTs = tuples[len(tuples)-1].Ts
			}
		}
		if !firstTs.IsZero() {
			span = lastTs.Sub(firstTs)
		}
		records, tuples := r.Counters()
		r.Close()
		fmt.Printf("%-24s %10d %12d %10v\n", n, records, tuples, span.Round(time.Millisecond))
	}
	return nil
}

// learnPlans mirrors gestured's startup: the same trainer seed yields the
// same learned queries and therefore the same compiled plans.
func learnPlans(gestures int, seed int64) (*serve.Registry, error) {
	fmt.Printf("learning %d gestures ... ", gestures)
	begin := time.Now()
	start := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	trainer, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry()
	specs := kinect.StandardGestures()
	for _, name := range gestureNames[:gestures] {
		samples, err := trainer.Samples(specs[name], 4, start, kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			return nil, err
		}
		res, err := learn.Learn(name, samples, learn.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if _, err := reg.Register(name, res.QueryText); err != nil {
			return nil, err
		}
	}
	fmt.Printf("done in %v\n", time.Since(begin).Round(time.Millisecond))
	return reg, nil
}

func printDetection(d anduin.Detection) {
	fmt.Printf("  %s  %s .. %s  (%v)\n",
		d.Gesture, d.Start.Format("15:04:05.000"), d.End.Format("15:04:05.000"),
		d.Duration().Round(time.Millisecond))
}

func replay(dir, name string, reg *serve.Registry, speed float64, adminAddr string, verbose bool) error {
	r, err := store.OpenReader(dir, name)
	if err != nil {
		return err
	}
	defer r.Close()
	m, err := serve.NewManager(serve.Config{}, reg)
	if err != nil {
		return err
	}
	defer m.Close()
	sess, err := m.CreateSession("replay:" + name)
	if err != nil {
		return err
	}
	var replayed atomic.Uint64
	begin := time.Now()
	if adminAddr != "" {
		admin, err := obs.StartAdmin(adminAddr, obs.AdminConfig{
			Collect: func(w *obs.PromWriter) {
				m.Metrics().WriteProm(w)
				n := replayed.Load()
				w.Gauge("replay_tuples", "Tuples replayed so far.", nil, float64(n))
				w.Gauge("replay_tuples_per_second", "Replay throughput since start.", nil,
					float64(n)/time.Since(begin).Seconds())
			},
			MetricsJSON: func() any { return m.Metrics() },
		})
		if err != nil {
			return err
		}
		defer admin.Close()
		fmt.Printf("admin plane on http://%s/metrics\n", admin.Addr())
	}
	stats, err := store.ReplayToSession(r, sess, store.ReplayOptions{
		Speed:    speed,
		Progress: func(tuples uint64) { replayed.Store(tuples) },
	})
	if err != nil {
		return err
	}
	dets := sess.Detections()
	if verbose {
		for _, d := range dets {
			printDetection(d)
		}
	}
	rate := float64(stats.Tuples) / stats.Duration.Seconds()
	fmt.Printf("replayed %d tuples (%d records, event span %v) in %v — %.0f tuples/s, %d detections\n",
		stats.Tuples, stats.Records, stats.EventSpan.Round(time.Millisecond),
		stats.Duration.Round(time.Millisecond), rate, len(dets))
	return nil
}

func backfill(dir, name string, reg *serve.Registry, verbose bool) error {
	r, err := store.OpenReader(dir, name)
	if err != nil {
		return err
	}
	defer r.Close()
	plans, err := reg.Resolve()
	if err != nil {
		return err
	}
	begin := time.Now()
	var onDet func(anduin.Detection)
	if verbose {
		onDet = printDetection
	}
	dets, err := store.Backfill(r, plans, store.BackfillOptions{OnDetection: onDet})
	if err != nil {
		return err
	}
	records, tuples := r.Counters()
	elapsed := time.Since(begin)
	fmt.Printf("backfilled %d plans over %d tuples (%d records) in %v — %.0f tuples/s, %d detections\n",
		len(plans), tuples, records, elapsed.Round(time.Millisecond),
		float64(tuples)/elapsed.Seconds(), len(dets))
	return nil
}
