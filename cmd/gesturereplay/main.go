// gesturereplay drives the durable stream store from the command line: it
// lists recorded streams, replays a recording back through a serving
// session (at wall-clock, scaled or maximum speed), backfills compiled
// gesture plans over recorded history offline — the batch half of the
// lambda-style live+historical system — or fans a backfill out across a
// fleet of running gestured backends.
//
//	go run ./cmd/gesturereplay -dir recordings -list
//	go run ./cmd/gesturereplay -dir recordings -stream user-1 -mode replay -speed 0
//	go run ./cmd/gesturereplay -dir recordings -stream user-1 -mode replay -offset 3000 -limit 1000
//	go run ./cmd/gesturereplay -dir recordings -stream user-1 -mode backfill -gestures 8
//	go run ./cmd/gesturereplay -mode fleet-backfill -backends :7001,:7002,:7003 -streams user-1,user-2
//
// Plans are learned from the same deterministic trainer gestured uses, so
// running with the same -gestures/-seed evaluates the identical compiled
// queries the live server served — replaying a stream recorded by
// `gestured -record-dir` reproduces its detections byte for byte. Raising
// -gestures beyond what the server had deployed is the offline-backfill
// workflow: new queries evaluated over old data.
//
// fleet-backfill needs no local plans or recordings: each named backend
// evaluates its own archive under its own registered plans (narrow with
// -fleet-gestures), and the detections merge deterministically in sorted
// stream order — byte-identical to a single-node backfill over the union of
// the fleet's archives.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/cluster"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
)

var gestureNames = kinect.DemoGestureNames()

func main() {
	var (
		dir       = flag.String("dir", "recordings", "stream-store directory")
		name      = flag.String("stream", "", "recorded stream to replay or backfill")
		mode      = flag.String("mode", "replay", "replay (through a serving session), backfill (offline plan evaluation), or fleet-backfill (fan out across -backends)")
		list      = flag.Bool("list", false, "list recorded streams and exit (summaries come from the sparse segment indexes; unindexed streams fall back to a scan)")
		speed     = flag.Float64("speed", 0, "replay speed: 0 = max, 1 = wall clock, 2 = double speed")
		offset    = flag.Uint64("offset", 0, "skip this many tuples before replaying (seeks via the sparse index)")
		limit     = flag.Uint64("limit", 0, "stop the replay after this many tuples (0 = all)")
		gestures  = flag.Int("gestures", 4, "gestures to learn and evaluate (1-8)")
		seed      = flag.Int64("seed", 1, "trainer random seed (match the recording server's)")
		backends  = flag.String("backends", "", "comma-separated backend wire addresses (fleet-backfill)")
		streams   = flag.String("streams", "", "comma-separated recorded stream names (fleet-backfill)")
		fleetGest = flag.String("fleet-gestures", "", "comma-separated plan names the backends evaluate (fleet-backfill; empty = every plan each backend has registered)")
		adminAddr = flag.String("admin-addr", "", "HTTP admin plane listen address during replay (/metrics with replay progress, /debug/pprof); empty disables")
		verbose   = flag.Bool("v", false, "print every detection")
	)
	flag.Parse()
	if err := run(opts{
		dir: *dir, name: *name, mode: *mode, list: *list, speed: *speed,
		offset: *offset, limit: *limit, gestures: *gestures, seed: *seed,
		backends: *backends, streams: *streams, fleetGestures: *fleetGest,
		adminAddr: *adminAddr, verbose: *verbose,
	}); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

type opts struct {
	dir, name, mode   string
	list              bool
	speed             float64
	offset, limit     uint64
	gestures          int
	seed              int64
	backends, streams string
	fleetGestures     string
	adminAddr         string
	verbose           bool
}

func run(o opts) error {
	if o.list {
		return listStreams(o.dir)
	}
	if o.mode == "fleet-backfill" {
		return fleetBackfill(o)
	}
	if o.name == "" {
		return fmt.Errorf("gesturereplay: -stream is required (or -list)")
	}
	if o.gestures < 1 || o.gestures > len(gestureNames) {
		return fmt.Errorf("gesturereplay: -gestures must be 1..%d", len(gestureNames))
	}
	reg, err := learnPlans(o.gestures, o.seed)
	if err != nil {
		return err
	}
	switch o.mode {
	case "replay":
		return replay(o, reg)
	case "backfill":
		return backfill(o.dir, o.name, reg, o.verbose)
	default:
		return fmt.Errorf("gesturereplay: unknown mode %q (want replay, backfill or fleet-backfill)", o.mode)
	}
}

func listStreams(dir string) error {
	names, err := store.ListStreams(dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		fmt.Printf("no recorded streams under %s\n", dir)
		return nil
	}
	fmt.Printf("%-24s %6s %10s %12s %10s %10s %8s\n",
		"stream", "segs", "records", "tuples", "bytes", "span", "indexed")
	for _, n := range names {
		info, err := store.Info(dir, n)
		if err != nil {
			return fmt.Errorf("gesturereplay: stream %q: %w", n, err)
		}
		var span time.Duration
		if !info.First.IsZero() {
			span = info.Last.Sub(info.First)
		}
		fmt.Printf("%-24s %6d %10d %12d %10d %10v %8v\n",
			n, info.Segments, info.Records, info.Tuples, info.Bytes,
			span.Round(time.Millisecond), info.Indexed)
	}
	return nil
}

// learnPlans mirrors gestured's startup: the same trainer seed yields the
// same learned queries and therefore the same compiled plans.
func learnPlans(gestures int, seed int64) (*serve.Registry, error) {
	fmt.Printf("learning %d gestures ... ", gestures)
	begin := time.Now()
	start := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	trainer, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		return nil, err
	}
	reg := serve.NewRegistry()
	specs := kinect.StandardGestures()
	for _, name := range gestureNames[:gestures] {
		samples, err := trainer.Samples(specs[name], 4, start, kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			return nil, err
		}
		res, err := learn.Learn(name, samples, learn.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if _, err := reg.Register(name, res.QueryText); err != nil {
			return nil, err
		}
	}
	fmt.Printf("done in %v\n", time.Since(begin).Round(time.Millisecond))
	return reg, nil
}

func printDetection(d anduin.Detection) {
	fmt.Printf("  %s  %s .. %s  (%v)\n",
		d.Gesture, d.Start.Format("15:04:05.000"), d.End.Format("15:04:05.000"),
		d.Duration().Round(time.Millisecond))
}

func replay(o opts, reg *serve.Registry) error {
	r, err := store.OpenReader(o.dir, o.name)
	if err != nil {
		return err
	}
	defer r.Close()
	m, err := serve.NewManager(serve.Config{}, reg)
	if err != nil {
		return err
	}
	defer m.Close()
	sess, err := m.CreateSession("replay:" + o.name)
	if err != nil {
		return err
	}
	var replayed atomic.Uint64
	begin := time.Now()
	if o.adminAddr != "" {
		admin, err := obs.StartAdmin(o.adminAddr, obs.AdminConfig{
			Collect: func(w *obs.PromWriter) {
				m.Metrics().WriteProm(w)
				n := replayed.Load()
				w.Gauge("replay_tuples", "Tuples replayed so far.", nil, float64(n))
				w.Gauge("replay_tuples_per_second", "Replay throughput since start.", nil,
					float64(n)/time.Since(begin).Seconds())
			},
			MetricsJSON: func() any { return m.Metrics() },
		})
		if err != nil {
			return err
		}
		defer admin.Close()
		fmt.Printf("admin plane on http://%s/metrics\n", admin.Addr())
	}
	stats, err := store.ReplayToSession(r, sess, store.ReplayOptions{
		Speed:    o.speed,
		Offset:   o.offset,
		Limit:    o.limit,
		Progress: func(tuples uint64) { replayed.Store(tuples) },
	})
	if err != nil {
		return err
	}
	dets := sess.Detections()
	if o.verbose {
		for _, d := range dets {
			printDetection(d)
		}
	}
	rate := float64(stats.Tuples) / stats.Duration.Seconds()
	window := ""
	if o.offset > 0 || o.limit > 0 {
		window = fmt.Sprintf(" (window [%d, +%d))", o.offset, stats.Tuples)
	}
	fmt.Printf("replayed %d tuples%s (%d records, event span %v) in %v — %.0f tuples/s, %d detections\n",
		stats.Tuples, window, stats.Records, stats.EventSpan.Round(time.Millisecond),
		stats.Duration.Round(time.Millisecond), rate, len(dets))
	return nil
}

func backfill(dir, name string, reg *serve.Registry, verbose bool) error {
	r, err := store.OpenReader(dir, name)
	if err != nil {
		return err
	}
	defer r.Close()
	plans, err := reg.Resolve()
	if err != nil {
		return err
	}
	begin := time.Now()
	var onDet func(anduin.Detection)
	if verbose {
		onDet = printDetection
	}
	dets, err := store.Backfill(r, plans, store.BackfillOptions{OnDetection: onDet})
	if err != nil {
		return err
	}
	records, tuples := r.Counters()
	elapsed := time.Since(begin)
	fmt.Printf("backfilled %d plans over %d tuples (%d records) in %v — %.0f tuples/s, %d detections\n",
		len(plans), tuples, records, elapsed.Round(time.Millisecond),
		float64(tuples)/elapsed.Seconds(), len(dets))
	return nil
}

// splitList parses a comma-separated flag into trimmed non-empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// fleetBackfill stands up an ad-hoc gateway over the named backends (no
// probing, no serving — just the ring and the backfill fan-out) and runs one
// fleet backfill through the same code path the membership admin plane uses.
func fleetBackfill(o opts) error {
	addrs := splitList(o.backends)
	if len(addrs) == 0 {
		return fmt.Errorf("gesturereplay: fleet-backfill needs -backends")
	}
	streams := splitList(o.streams)
	if len(streams) == 0 {
		return fmt.Errorf("gesturereplay: fleet-backfill needs -streams")
	}
	fleet := make([]cluster.Backend, len(addrs))
	for i, addr := range addrs {
		fleet[i] = cluster.Backend{ID: addr, Addr: addr}
	}
	gw, err := cluster.NewGateway(cluster.Config{
		Backends:      fleet,
		Name:          "gesturereplay",
		ProbeInterval: -1, // one-shot batch job; no health plane needed
	})
	if err != nil {
		return err
	}
	defer gw.Close()
	begin := time.Now()
	res, err := gw.Backfill(cluster.BackfillSpec{
		Streams:  streams,
		Gestures: splitList(o.fleetGestures),
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(begin)
	part := make([]string, 0, len(res.Partitions))
	for id, names := range res.Partitions {
		part = append(part, fmt.Sprintf("%s=%d", id, len(names)))
	}
	sort.Strings(part)
	fmt.Printf("fleet backfill over %d backends: %d/%d streams, %d records, %d tuples, %d detections in %v (partition %s, %d retried)\n",
		len(addrs), res.Found, len(res.Streams), res.Records, res.Tuples,
		res.DetectionTotal(), elapsed.Round(time.Millisecond),
		strings.Join(part, " "), res.Retried)
	for i, name := range res.Streams {
		if o.verbose {
			fmt.Printf("%s: %d detections\n", name, len(res.Detections[i]))
			for _, d := range res.Detections[i] {
				printDetection(d)
			}
		}
	}
	if len(res.Missing) > 0 {
		return fmt.Errorf("gesturereplay: %d streams not archived by any backend: %s",
			len(res.Missing), strings.Join(res.Missing, ", "))
	}
	return nil
}
