// gesturegateway is the cluster front door: it terminates the wire
// protocol and shards remote sessions across a fleet of gestured backends
// with a bounded-load consistent-hash ring, health-checking each backend,
// re-homing sessions off dead ones, and (by default) re-admitting a
// backend once it answers pings again — new sessions then drift back to it
// through the ring's load bound. Clients — cmd/gestureload included —
// target it exactly as they would a single gestured process.
//
// All-in-one mode spawns the backends in-process (learning the gestures
// once, sharing the compiled plans across the fleet):
//
//	go run ./cmd/gesturegateway -addr :7475 -backends 3
//	go run ./cmd/gestureload -addr localhost:7475 -sessions 256 -verify
//
// Fronting external gestured processes instead:
//
//	go run ./cmd/gestured -addr :7474 -name b0 &
//	go run ./cmd/gestured -addr :7476 -name b1 &
//	go run ./cmd/gesturegateway -addr :7475 -backend b0=localhost:7474 -backend b1=localhost:7476
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gesturecep/internal/cluster"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/membership"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

var gestureNames = kinect.DemoGestureNames()

// backendFlags collects repeated -backend id=addr values.
type backendFlags []cluster.Backend

func (b *backendFlags) String() string {
	parts := make([]string, len(*b))
	for i, be := range *b {
		parts[i] = be.ID + "=" + be.Addr
	}
	return strings.Join(parts, ",")
}

func (b *backendFlags) Set(v string) error {
	id, addr, ok := strings.Cut(v, "=")
	if !ok {
		id, addr = v, v // a bare address names itself
	}
	*b = append(*b, cluster.Backend{ID: id, Addr: addr})
	return nil
}

func main() {
	var external backendFlags
	var (
		addr         = flag.String("addr", ":7475", "TCP listen address for the gateway front")
		backends     = flag.Int("backends", 3, "in-process backends to spawn (ignored with -backend)")
		vnodes       = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the ring")
		loadFactor   = flag.Float64("load-factor", cluster.DefaultLoadFactor, "bounded-load factor c (max sessions per backend = ceil(c × average))")
		probe        = flag.Duration("probe", 500*time.Millisecond, "health-probe interval (negative disables probing)")
		probeTimeout = flag.Duration("probe-timeout", 2*time.Second, "health-probe timeout before a backend is ejected")
		readmit      = flag.Bool("readmit", true, "re-admit ejected backends once they answer pings again (re-dial with capped exponential backoff)")
		backoff      = flag.Duration("readmit-backoff", 250*time.Millisecond, "initial re-dial delay of the recovery loop (doubles per failed attempt)")
		maxBackoff   = flag.Duration("readmit-max-backoff", 5*time.Second, "cap on the recovery loop's exponential backoff")
		tolerateDown = flag.Bool("tolerate-down", false, "start even if some backends are unreachable and admit them when they come up (external backends)")
		shards       = flag.Int("shards", 0, "ingestion shards per spawned backend (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 256, "per-shard queue depth of spawned backends")
		policy       = flag.String("policy", "block", "spawned backends' backpressure policy: block or drop-oldest")
		gestures     = flag.Int("gestures", 4, "gestures to learn for spawned backends (1-8)")
		seed         = flag.Int64("seed", 1, "trainer random seed")
		recordDir    = flag.String("record-dir", "", "record every spawned backend's sessions under this directory (one archive per backend)")
		adminAddr    = flag.String("admin-addr", "", "HTTP admin plane listen address (/metrics, /readyz flips with live-backend count, /events, /debug/pprof); empty disables")
		verbose      = flag.Bool("v", false, "print the per-backend metric table on shutdown")
	)
	flag.Var(&external, "backend", "external backend as id=host:port (repeatable; disables spawning)")
	flag.Parse()
	health := healthConfig{
		probe:        *probe,
		probeTimeout: *probeTimeout,
		readmit:      *readmit,
		backoff:      *backoff,
		maxBackoff:   *maxBackoff,
		tolerateDown: *tolerateDown,
	}
	if err := run(*addr, external, *backends, *vnodes, *loadFactor, health,
		*shards, *queue, *policy, *gestures, *seed, *recordDir, *adminAddr, *verbose); err != nil {
		log.SetFlags(0)
		log.Fatal(err)
	}
}

// healthConfig groups the probing and recovery flags.
type healthConfig struct {
	probe        time.Duration
	probeTimeout time.Duration
	readmit      bool
	backoff      time.Duration
	maxBackoff   time.Duration
	tolerateDown bool
}

func run(addr string, external []cluster.Backend, backends, vnodes int, loadFactor float64,
	health healthConfig, shards, queue int, policyName string,
	gestures int, seed int64, recordDir, adminAddr string, verbose bool) error {
	if health.tolerateDown && len(external) == 0 {
		// Spawned backends are in-process: if one failed to come up, Spawn
		// already failed. Tolerance is for external fleets.
		return fmt.Errorf("gesturegateway: -tolerate-down only makes sense with external -backend fleets")
	}
	fleet := external
	if len(external) == 0 {
		if gestures < 1 || gestures > len(gestureNames) {
			return fmt.Errorf("gesturegateway: -gestures must be 1..%d", len(gestureNames))
		}
		pol, err := serve.ParsePolicy(policyName)
		if err != nil {
			return err
		}

		// Learn each gesture once; the whole fleet shares the plans.
		fmt.Printf("learning %d gestures ... ", gestures)
		start := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
		learnStart := time.Now()
		trainer, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
		if err != nil {
			return err
		}
		reg := serve.NewRegistry()
		specs := kinect.StandardGestures()
		for _, name := range gestureNames[:gestures] {
			samples, err := trainer.Samples(specs[name], 4, start, kinect.PerformOpts{PathJitter: 25})
			if err != nil {
				return err
			}
			res, err := learn.Learn(name, samples, learn.DefaultConfig())
			if err != nil {
				return err
			}
			if _, err := reg.Register(name, res.QueryText); err != nil {
				return err
			}
		}
		fmt.Printf("done in %v\n", time.Since(learnStart).Round(time.Millisecond))

		opts := cluster.SpawnOptions{Serve: serve.Config{Shards: shards, QueueDepth: queue, Policy: pol}}
		var archives []*store.Archive
		if recordDir != "" {
			archiveOf := make(map[string]*store.Archive, backends)
			for i := 0; i < backends; i++ {
				id := cluster.BackendID(i)
				archiveOf[id] = store.NewArchive(recordDir+"/"+id, store.Options{}, 0)
				archives = append(archives, archiveOf[id])
			}
			opts.TapSessions = func(backendID string) func(string) (func(stream.Tuple), func(bool), error) {
				arch := archiveOf[backendID]
				return func(sessionID string) (func(stream.Tuple), func(bool), error) {
					rec, err := arch.Record(sessionID, kinect.Schema())
					if err != nil {
						return nil, nil, err
					}
					return rec.Tap(), func(aborted bool) {
						end := arch.Release
						if aborted {
							end = arch.Abort
						}
						if err := end(rec); err != nil {
							log.Printf("gesturegateway: recording %q: %v", rec.Stream(), err)
						}
					}, nil
				}
			}
			// Recording makes sessions live-migratable: the migration source
			// syncs a session's recorder and streams the recording back out,
			// which is what lets /backends/drain move sessions with state.
			// Readers come from arch.OpenReader so they hold the archive's
			// per-stream read lock against background compaction.
			opts.MigrateSource = func(backendID string) func(string) (wire.HistoryReader, uint64, error) {
				arch := archiveOf[backendID]
				return func(sessionID string) (wire.HistoryReader, uint64, error) {
					rec, ok := arch.LiveRecorder(sessionID)
					if !ok {
						return nil, 0, fmt.Errorf("gesturegateway: no live recording for session %q on %s", sessionID, backendID)
					}
					if err := rec.Sync(); err != nil {
						return nil, 0, err
					}
					r, err := arch.OpenReader(rec.Stream())
					if err != nil {
						return nil, 0, err
					}
					return r, rec.Recorded(), nil
				}
			}
			// Each backend answers wire backfill requests over its own
			// archive, which is what POST /backfill on the admin plane (and
			// gesturereplay -mode fleet-backfill) fans out across.
			opts.Backfill = func(backendID string) wire.BackfillFunc {
				arch := archiveOf[backendID]
				return store.NewWireBackfillSource(reg, arch.OpenReader)
			}
		}
		sp, err := cluster.Spawn(backends, reg, opts)
		if err != nil {
			return err
		}
		defer sp.Close()
		for _, arch := range archives {
			defer arch.Close()
		}
		if recordDir != "" {
			fmt.Printf("recording sessions under %s (one archive per backend)\n", recordDir)
		}
		fleet = sp.Backends()
		fmt.Printf("spawned %d backends, %d plans, policy %s\n", backends, reg.Len(), pol)
	}

	gw, err := cluster.NewGateway(cluster.Config{
		Backends:          fleet,
		Name:              "gesturegateway",
		VNodes:            vnodes,
		LoadFactor:        loadFactor,
		ProbeInterval:     health.probe,
		ProbeTimeout:      health.probeTimeout,
		Readmit:           health.readmit,
		ReadmitBackoff:    health.backoff,
		ReadmitMaxBackoff: health.maxBackoff,
		TolerateDown:      health.tolerateDown,
		Logf:              log.Printf,
	})
	if err != nil {
		return err
	}

	ctrl := membership.New(gw, gw.Log(), 0)
	defer ctrl.Close()

	if adminAddr != "" {
		admin, err := obs.StartAdmin(adminAddr, obs.AdminConfig{
			Collect: gw.WriteProm,
			MetricsJSON: func() any {
				return struct {
					Cluster   serve.Metrics            `json:"cluster"`
					Forward   map[string]obs.HistStats `json:"forward,omitempty"`
					Migration cluster.MigrationStats   `json:"migration"`
					Backfill  cluster.BackfillStats    `json:"backfill"`
				}{gw.Metrics(), gw.ForwardStats(), gw.MigrationStats(), gw.BackfillStats()}
			},
			Healthy: func() error { return nil }, // the process serves while it runs
			Ready:   gw.Ready,
			Events:  gw.Events,
			Routes:  ctrl.Routes(),
		})
		if err != nil {
			gw.Close()
			return err
		}
		defer admin.Close()
		fmt.Printf("admin plane on http://%s/metrics (membership: /backends, /backends/drain, /migrations, /backfill)\n", admin.Addr())
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- gw.ListenAndServe(addr) }()

	readmitDesc := "readmit off"
	if health.readmit {
		readmitDesc = fmt.Sprintf("readmit backoff %v..%v", health.backoff, health.maxBackoff)
	}
	fmt.Printf("gesturegateway listening on %s — %d backends, %d vnodes, load factor %.2f, probe %v, %s\n",
		addr, len(fleet), vnodes, loadFactor, health.probe, readmitDesc)

	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("\n%v: shutting down\n", sig)
	}
	mm := gw.Metrics()
	if err := gw.Close(); err != nil {
		return err
	}
	fmt.Printf("served %s\n", mm)
	if verbose {
		fmt.Print(mm.Table())
	}
	return nil
}
