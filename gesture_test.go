package gesture

import (
	"path/filepath"
	"testing"
	"time"

	"gesturecep/internal/kinect"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// trainSamples produces n samples of a standard gesture.
func trainSamples(t *testing.T, gestureName string, n int, seed int64) [][]Frame {
	t.Helper()
	sim, err := NewSimulator(DefaultProfile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sim.Samples(StandardGestures()[gestureName], n, t0(), PerformOpts{PathJitter: 25})
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestSystemLearnDeployDetect(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Learn(kinect.GestureSwipeRight, trainSamples(t, kinect.GestureSwipeRight, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryText == "" {
		t.Fatal("empty query text")
	}
	if err := sys.Deploy(kinect.GestureSwipeRight); err != nil {
		t.Fatal(err)
	}
	if got := sys.Deployed(); len(got) != 1 || got[0] != kinect.GestureSwipeRight {
		t.Errorf("deployed = %v", got)
	}

	var dets []Detection
	cancel := sys.OnDetection(func(d Detection) { dets = append(dets, d) })
	defer cancel()

	sim, _ := NewSimulator(TallProfile(), 7)
	sess, err := sim.RunScript([]ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, t0().Add(time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replay(sess.Frames); err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	eval := Evaluate(sess.Truth, dets, DefaultTolerance)
	if eval[kinect.GestureSwipeRight].F1() != 1 {
		t.Errorf("F1 = %v", eval[kinect.GestureSwipeRight])
	}
}

func TestSystemRuntimeExchange(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Learn("g", trainSamples(t, kinect.GestureSwipeRight, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy("g"); err != nil {
		t.Fatal(err)
	}
	// Re-learn and redeploy under the same name: the old query is swapped
	// out.
	if _, err := sys.Learn("g", trainSamples(t, kinect.GesturePush, 3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := sys.Deploy("g"); err != nil {
		t.Fatal(err)
	}
	if qs := sys.Engine.Queries(); len(qs) != 1 {
		t.Errorf("queries after exchange = %d, want 1", len(qs))
	}
	if err := sys.Undeploy("g"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Undeploy("g"); err == nil {
		t.Error("double undeploy accepted")
	}
	if err := sys.Deploy("missing"); err == nil {
		t.Error("deploy of missing gesture accepted")
	}
}

func TestSystemDeployAllAndCrossCheck(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range []string{kinect.GestureSwipeRight, kinect.GesturePush} {
		if _, err := sys.Learn(g, trainSamples(t, g, 3, int64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.DeployAll(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Deployed()) != 2 {
		t.Errorf("deployed = %v", sys.Deployed())
	}
	rep := sys.CrossCheck(0.5)
	for _, pair := range rep.FullSequenceConflicts {
		t.Errorf("unexpected full conflict: %v", pair)
	}
}

func TestSystemSaveLoadGestures(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Learn("g", trainSamples(t, kinect.GestureCircle, 3, 5)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gestures.json")
	if err := sys.SaveGestures(path); err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.LoadGestures(path); err != nil {
		t.Fatal(err)
	}
	if sys2.DB.Len() != 1 {
		t.Errorf("loaded %d gestures", sys2.DB.Len())
	}
	if err := sys2.Deploy("g"); err != nil {
		t.Errorf("deploy after load: %v", err)
	}
	if err := sys2.LoadGestures(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSystemFeedSingleFrames(t *testing.T) {
	sys, err := NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := NewSimulator(DefaultProfile(), 9)
	for _, f := range sim.Idle(t0(), 200*time.Millisecond) {
		if err := sys.Feed(f); err != nil {
			t.Fatal(err)
		}
	}
}
