// Quickstart: the complete paper workflow in ~60 lines.
//
//  1. "Record" a few samples of a gesture (simulated Kinect).
//  2. Learn a declarative CEP pattern from them (§3.3).
//  3. Deploy the generated query in the stream engine.
//  4. Replay a live session — performed by a *different* user — and watch
//     detections arrive.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gesturecep"
)

func main() {
	// 1. Record four samples of swipe_right with the default adult user.
	trainer, err := gesture.NewSimulator(gesture.DefaultProfile(), 1)
	if err != nil {
		log.Fatal(err)
	}
	spec := gesture.StandardGestures()["swipe_right"]
	samples, err := trainer.Samples(spec, 4, time.Now(), gesture.PerformOpts{PathJitter: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d samples (%d..%d frames each)\n",
		len(samples), len(samples[0]), len(samples[len(samples)-1]))

	// 2+3. Learn and deploy.
	sys, err := gesture.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Learn("swipe_right", samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d pose windows; generated query:\n\n%s\n", len(res.Model.Windows), res.QueryText)
	if err := sys.Deploy("swipe_right"); err != nil {
		log.Fatal(err)
	}

	// 4. A child performs the gesture twice in a live session.
	sys.OnDetection(func(d gesture.Detection) {
		fmt.Printf(">>> detected %q at %s (movement took %v)\n",
			d.Gesture, d.End.Format("15:04:05.000"), d.Duration().Round(10*time.Millisecond))
	})
	player, err := gesture.NewSimulator(gesture.ChildProfile(), 7)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := player.RunScript([]gesture.ScriptItem{
		{Idle: time.Second},
		{Gesture: "swipe_right", Opts: gesture.PerformOpts{PathJitter: 15}},
		{Idle: 2 * time.Second},
		{Gesture: "circle"}, // a different movement: must stay silent
		{Idle: time.Second},
		{Gesture: "swipe_right", Opts: gesture.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, time.Now(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %v of child-user sensor data...\n", sess.Duration().Round(time.Second))
	if err := sys.Replay(sess.Frames); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done — the pattern learned from the adult detected the child twice, and ignored the circle.")
}
