// OLAP navigation: the paper's Data³ scenario ([3]) — detected gestures
// drive drill-down / roll-up / pivot / slice operations on an OLAP cube.
//
// Gesture bindings (learned from simulated samples at startup):
//
//	swipe_down → drill-down     swipe_up → roll-up
//	swipe_right → pivot         swipe_left → rotate column dimension
//	push → slice to DE          pull → remove the slice
//
// The user then "performs" a scripted session in front of the camera and
// every detection mutates the cube view, which is printed after each step —
// exactly the decoupling the paper advertises: the application only sees
// gesture names.
//
// Run with: go run ./examples/olapnav
package main

import (
	"fmt"
	"log"
	"time"

	"gesturecep"
	"gesturecep/internal/olap"
)

func main() {
	cube, err := olap.SampleSalesCube()
	if err != nil {
		log.Fatal(err)
	}
	view := olap.NewView(cube)

	sys, err := gesture.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// Learn the six control gestures from 4 simulated samples each.
	trainer, err := gesture.NewSimulator(gesture.DefaultProfile(), 3)
	if err != nil {
		log.Fatal(err)
	}
	bound := []string{"swipe_down", "swipe_up", "swipe_right", "swipe_left", "push", "pull"}
	for _, g := range bound {
		samples, err := trainer.Samples(gesture.StandardGestures()[g], 4, time.Now(), gesture.PerformOpts{PathJitter: 25})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Learn(g, samples); err != nil {
			log.Fatalf("learning %s: %v", g, err)
		}
	}
	if err := sys.DeployAll(); err != nil {
		log.Fatal(err)
	}
	// Cross-check the learned set for the §3.3.3 overlap problem.
	if rep := sys.CrossCheck(0.6); len(rep.FullSequenceConflicts) > 0 {
		fmt.Println("warning: conflicting gesture pairs:", rep.FullSequenceConflicts)
	}

	// Application logic: map gesture names to navigation operators.
	apply := func(name string) {
		var err error
		var op string
		switch name {
		case "swipe_down":
			op, err = "drill-down", view.DrillDown()
		case "swipe_up":
			op, err = "roll-up", view.RollUp()
		case "swipe_right":
			op = "pivot"
			view.Pivot()
		case "swipe_left":
			op = "rotate dimensions"
			view.RotateDims()
		case "push":
			op, err = "slice country=DE", view.Slice("country", "DE")
		case "pull":
			op = "unslice country"
			view.Unslice("country")
		default:
			return
		}
		if err != nil {
			fmt.Printf("\n[%s -> %s: %v]\n", name, op, err)
			return
		}
		tab, err := view.Aggregate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n[gesture %q -> %s]\n%s", name, op, tab)
	}
	sys.OnDetection(func(d gesture.Detection) { apply(d.Gesture) })

	start, _ := view.Aggregate()
	fmt.Printf("initial view:\n%s", start)

	// The user navigates: drill into quarters, slice to Germany, pivot,
	// roll back up.
	player, err := gesture.NewSimulator(gesture.TallProfile(), 11)
	if err != nil {
		log.Fatal(err)
	}
	script := []gesture.ScriptItem{
		{Idle: time.Second},
		{Gesture: "swipe_down"}, // drill time: year -> quarter
		{Idle: 1500 * time.Millisecond},
		{Gesture: "push"}, // slice to Germany
		{Idle: 1500 * time.Millisecond},
		{Gesture: "pull"}, // full data again
		{Idle: 1500 * time.Millisecond},
		{Gesture: "swipe_up"}, // back to years
		{Idle: 1500 * time.Millisecond},
		{Gesture: "swipe_right"}, // pivot geo <-> time
		{Idle: time.Second},
	}
	sess, err := player.RunScript(script, time.Now(), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Replay(sess.Frames); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsession finished.")
}
