// Interactive learning session — the complete Fig. 2 workflow, entirely
// gesture-controlled (§3.1): the learning tool itself is operated through
// pre-defined control gestures, so the user never touches the keyboard.
//
//  1. The wave gesture arms the recorder.
//  2. The user holds still at the start pose; the stillness protocol
//     segments each training sample automatically.
//  3. After a few repetitions, a two-hand swipe finalizes the session: the
//     CEP query is generated and deployed, and the testing phase begins.
//
// Run with: go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"time"

	"gesturecep"
	"gesturecep/internal/anduin"
	"gesturecep/internal/control"
	"gesturecep/internal/detect"
	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

func main() {
	// Engine with the kinect pipeline and the pre-defined control queries.
	h, err := detect.NewHarness(transform.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := h.Deploy(control.ControlQueries()...); err != nil {
		log.Fatal(err)
	}

	// The controller runs one learning session for the new gesture. The
	// finalize event carries the learning result.
	var learned *gesture.LearnResult
	ctl, err := control.New("letter_l", control.DefaultConfig(), func(e control.Event) {
		switch e.Kind {
		case control.EventArmed:
			fmt.Println("[controller] wave detected — recording armed, hold still at the start pose")
		case control.EventSampleRecorded:
			fmt.Printf("[controller] sample %d recorded\n", e.Samples)
		case control.EventSampleRejected:
			fmt.Println("[controller] movement too short — ignored")
		case control.EventWarning:
			fmt.Printf("[controller] warning: %s\n", e.Warning)
		case control.EventFinalized:
			if e.Err != nil {
				fmt.Println("[controller] finalize failed:", e.Err)
				return
			}
			learned = e.Result
			fmt.Printf("[controller] finalized after %d samples — generated query:\n\n%s\n",
				e.Samples, e.Result.QueryText)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	h.Engine.Subscribe(func(d anduin.Detection) { ctl.HandleDetection(d.Gesture) })
	h.Raw.Subscribe(func(tp stream.Tuple) {
		if f, err := kinect.FromTuple(tp); err == nil {
			ctl.HandleFrame(f)
		}
	})

	// The user's new gesture: an L shape (down, then right).
	letterL := gesture.GestureSpec{
		Name:     "letter_l",
		Duration: 1100 * time.Millisecond,
		Paths: map[gesture.Joint][]geom.Vec3{
			kinect.RightHand: {
				{X: 100, Y: 450, Z: -200},
				{X: 100, Y: -50, Z: -200},
				{X: 450, Y: -50, Z: -200},
			},
		},
	}
	extra := map[string]gesture.GestureSpec{"letter_l": letterL}

	// One continuous camera session: wave, three repetitions, finalize.
	sim, err := gesture.NewSimulator(gesture.DefaultProfile(), 17)
	if err != nil {
		log.Fatal(err)
	}
	script := []gesture.ScriptItem{
		{Idle: time.Second},
		{Gesture: "wave"},
		{Idle: time.Second},
		{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 25}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 25}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 25}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "two_hand_swipe"},
		{Idle: time.Second},
	}
	sess, err := sim.RunScript(script, time.Now(), extra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying a %v interactive session...\n", sess.Duration().Round(time.Second))
	if err := stream.Replay(h.Raw, kinect.ToTuples(sess.Frames)); err != nil {
		log.Fatal(err)
	}

	// Testing phase: deploy the learned query and verify detection. If the
	// finalize gesture was somehow missed, finalize programmatically.
	if learned == nil {
		learned, err = ctl.Finalize()
		if err != nil {
			log.Fatalf("controller did not produce a result (phase %v): %v", ctl.Phase(), err)
		}
	}
	if err := h.Deploy(learned.QueryText); err != nil {
		log.Fatal(err)
	}
	h.Engine.Subscribe(func(d anduin.Detection) {
		if d.Gesture == "letter_l" {
			fmt.Printf(">>> letter_l detected at %s\n", d.End.Format("15:04:05.000"))
		}
	})
	test, err := sim.RunScript([]gesture.ScriptItem{
		{Idle: time.Second},
		{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, time.Now().Add(time.Hour), extra)
	if err != nil {
		log.Fatal(err)
	}
	if err := stream.Replay(h.Raw, kinect.ToTuples(test.Frames)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("testing phase finished.")
}
