// Custom gesture definition at runtime — the paper's headline scenario:
// a non-expert user invents a brand-new movement ("letter L": hand moves
// down, then to the right), records a few samples segmented by the §3.1
// motion-detection recorder, and the system learns, validates and deploys
// it while the application keeps running.
//
// The example also demonstrates the §3.3.2 outlier warning (one recording
// is a completely different movement) and the §3.3.3 cross-check against
// the already-installed gesture set.
//
// Run with: go run ./examples/customgesture
package main

import (
	"fmt"
	"log"
	"time"

	"gesturecep"
	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
)

func main() {
	sys, err := gesture.NewSystem()
	if err != nil {
		log.Fatal(err)
	}

	// The application starts with one pre-defined gesture.
	trainer, err := gesture.NewSimulator(gesture.DefaultProfile(), 2)
	if err != nil {
		log.Fatal(err)
	}
	swipe, err := trainer.Samples(gesture.StandardGestures()["swipe_right"], 4, time.Now(), gesture.PerformOpts{PathJitter: 25})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Learn("swipe_right", swipe); err != nil {
		log.Fatal(err)
	}
	if err := sys.DeployAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("application running with:", sys.Deployed())

	// The user invents "letter_l": down, then right.
	letterL := gesture.GestureSpec{
		Name:     "letter_l",
		Duration: 1100 * time.Millisecond,
		Paths: map[gesture.Joint][]geom.Vec3{
			kinect.RightHand: {
				{X: 100, Y: 450, Z: -200},
				{X: 100, Y: -50, Z: -200},
				{X: 450, Y: -50, Z: -200},
			},
		},
	}

	// Record five repetitions in one continuous session; the recorder
	// (§3.1) segments them from the raw stream using the stillness
	// protocol.
	var script []gesture.ScriptItem
	script = append(script, gesture.ScriptItem{Idle: 2 * time.Second})
	for i := 0; i < 5; i++ {
		script = append(script,
			gesture.ScriptItem{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 25}},
			gesture.ScriptItem{Idle: 2 * time.Second},
		)
	}
	rec, err := trainer.RunScript(script, time.Now(), map[string]gesture.GestureSpec{"letter_l": letterL})
	if err != nil {
		log.Fatal(err)
	}
	raw, err := kinect.SegmentFrames(kinect.DefaultRecorderConfig(), rec.Frames)
	if err != nil {
		log.Fatal(err)
	}
	// The recorder also captures the short approach movements towards the
	// start pose; in the paper the user reviews every recording with the
	// visual feedback tool and keeps the actual executions. Emulate the
	// review: keep segments of plausible gesture length.
	var segments [][]gesture.Frame
	for _, seg := range raw {
		if dur := seg[len(seg)-1].Ts.Sub(seg[0].Ts); dur >= 700*time.Millisecond {
			segments = append(segments, seg)
		}
	}
	fmt.Printf("recorder segmented %d movements, user kept %d gesture samples\n", len(raw), len(segments))

	// Learn incrementally; inject one bogus recording to show the outlier
	// warning.
	learner, err := learn.NewLearner("letter_l", learn.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for i, seg := range segments {
		warns, err := learner.AddSample(seg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sample %d merged (%d frames, %d warnings)\n", i+1, len(seg), len(warns))
	}
	bogus, err := trainer.Samples(gesture.StandardGestures()["circle"], 1, time.Now(), gesture.PerformOpts{})
	if err != nil {
		log.Fatal(err)
	}
	warns, err := learner.AddSample(bogus[0])
	if err != nil {
		log.Fatal(err)
	}
	if len(warns) > 0 {
		fmt.Printf("  bogus recording rejected by the user after %d warnings (e.g. %s)\n", len(warns), warns[0])
	}
	// The user discards the bogus sample: re-learn from the good segments
	// only (the paper's interactive loop). sys.Learn also stores the
	// result in the gesture database.
	res, err := sys.Learn("letter_l", segments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %q with %d pose windows\n", res.Model.Name, len(res.Model.Windows))

	// Cross-check against the installed set, then deploy.
	rep := sys.CrossCheck(0.6)
	fmt.Printf("cross-check: %d window overlaps, %d full conflicts\n",
		len(rep.Overlaps), len(rep.FullSequenceConflicts))
	if err := sys.Deploy("letter_l"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("now deployed:", sys.Deployed())

	// Live test: both gestures in one session.
	sys.OnDetection(func(d gesture.Detection) {
		fmt.Printf(">>> %q detected at %s\n", d.Gesture, d.End.Format("15:04:05.000"))
	})
	player, err := gesture.NewSimulator(gesture.TallProfile(), 31)
	if err != nil {
		log.Fatal(err)
	}
	test, err := player.RunScript([]gesture.ScriptItem{
		{Idle: time.Second},
		{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 15}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "swipe_right"},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "letter_l", Opts: gesture.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, time.Now(), map[string]gesture.GestureSpec{"letter_l": letterL})
	if err != nil {
		log.Fatal(err)
	}
	var dets []gesture.Detection
	sys.OnDetection(func(d gesture.Detection) { dets = append(dets, d) })
	if err := sys.Replay(test.Frames); err != nil {
		log.Fatal(err)
	}
	eval := gesture.Evaluate(test.Truth, dets, gesture.DefaultTolerance)
	for name, o := range eval {
		fmt.Printf("  %-12s %s\n", name, o)
	}
	fmt.Println("session finished.")
}
