// Kevin Bacon game: the paper's graph-database scenario ([1]) — detected
// gestures traverse an actor–movie graph.
//
// Gesture bindings:
//
//	swipe_right → select next neighbour    swipe_left → select previous
//	push        → move to selection        pull       → go back
//	raise_hand  → show Bacon number + shortest path to Kevin Bacon
//
// Run with: go run ./examples/kevinbacon
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"gesturecep"
	"gesturecep/internal/graphdb"
)

func main() {
	g, err := graphdb.SampleBaconGraph()
	if err != nil {
		log.Fatal(err)
	}
	cursor, err := graphdb.NewCursor(g, "Hugh Grant")
	if err != nil {
		log.Fatal(err)
	}

	sys, err := gesture.NewSystem()
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := gesture.NewSimulator(gesture.DefaultProfile(), 5)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"swipe_right", "swipe_left", "push", "pull", "raise_hand"} {
		samples, err := trainer.Samples(gesture.StandardGestures()[name], 4, time.Now(), gesture.PerformOpts{PathJitter: 25})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Learn(name, samples); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.DeployAll(); err != nil {
		log.Fatal(err)
	}

	show := func() {
		kind, _ := g.Kind(cursor.Current())
		fmt.Printf("  at %-18s (%s) — selected neighbour: %s\n",
			cursor.Current(), kind, cursor.Selected())
	}
	sys.OnDetection(func(d gesture.Detection) {
		switch d.Gesture {
		case "swipe_right":
			cursor.Next()
			fmt.Printf("[swipe_right] next neighbour\n")
		case "swipe_left":
			cursor.Prev()
			fmt.Printf("[swipe_left] previous neighbour\n")
		case "push":
			if _, err := cursor.Descend(); err != nil {
				fmt.Println("[push]", err)
				return
			}
			fmt.Printf("[push] moved\n")
		case "pull":
			if _, err := cursor.Back(); err != nil {
				fmt.Println("[pull]", err)
				return
			}
			fmt.Printf("[pull] back\n")
		case "raise_hand":
			if n, ok := g.BaconNumber(cursor.Current(), "Kevin Bacon"); ok {
				path, _ := g.ShortestPath(cursor.Current(), "Kevin Bacon")
				fmt.Printf("[raise_hand] Bacon number of %s = %d via %s\n",
					cursor.Current(), n, strings.Join(path, " -> "))
			}
			return
		default:
			return
		}
		show()
	})

	fmt.Println("start of the Kevin Bacon game:")
	show()

	player, err := gesture.NewSimulator(gesture.ChildProfile(), 23)
	if err != nil {
		log.Fatal(err)
	}
	script := []gesture.ScriptItem{
		{Idle: time.Second},
		{Gesture: "raise_hand"}, // how far is Hugh Grant from Kevin Bacon?
		{Idle: 1500 * time.Millisecond},
		{Gesture: "push"}, // into Notting Hill
		{Idle: 1500 * time.Millisecond},
		{Gesture: "swipe_right"}, // browse the cast
		{Idle: 1500 * time.Millisecond},
		{Gesture: "push"}, // onto Julia Roberts
		{Idle: 1500 * time.Millisecond},
		{Gesture: "raise_hand"}, // her Bacon number
		{Idle: 1500 * time.Millisecond},
		{Gesture: "pull"}, // back to the movie
		{Idle: time.Second},
	}
	sess, err := player.RunScript(script, time.Now(), nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Replay(sess.Frames); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session finished.")
}
