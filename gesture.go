// Package gesture is the public facade of the gesture-learning CEP system,
// a reproduction of "Learning Event Patterns for Gesture Detection"
// (Beier, Alaqraa, Lai, Sattler — EDBT 2014).
//
// The package wires together the internal subsystems into the workflow of
// the paper's Fig. 2:
//
//	sim := gesture.NewSimulator(...)            // stand-in for the Kinect
//	sys, _ := gesture.NewSystem()               // AnduIN-like engine + kinect_t view
//	res, _ := sys.Learn("swipe_right", samples) // §3.3 learning pipeline
//	sys.Deploy("swipe_right")                   // generated CEP query goes live
//	sys.OnDetection(func(d gesture.Detection) { ... })
//	sys.Replay(frames)                          // feed sensor tuples
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture.
package gesture

import (
	"fmt"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/cluster"
	"gesturecep/internal/detect"
	"gesturecep/internal/gesturedb"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
	"gesturecep/internal/validate"
	"gesturecep/internal/wire"
)

// Re-exported core types, so example applications only import this package.
type (
	// Detection is a fired gesture query (name + event-time interval).
	Detection = anduin.Detection
	// Frame is one skeleton snapshot from the (simulated) camera.
	Frame = kinect.Frame
	// Profile describes a simulated user.
	Profile = kinect.Profile
	// LearnResult is the outcome of the learning pipeline: model, query
	// AST and query text.
	LearnResult = learn.Result
	// LearnConfig tunes the learning pipeline.
	LearnConfig = learn.Config
	// TransformConfig tunes the §3.2 invariance transformation.
	TransformConfig = transform.Config
	// Outcome is a precision/recall/F1 evaluation result.
	Outcome = detect.Outcome
	// TruthInterval is a ground-truth gesture annotation.
	TruthInterval = kinect.TruthInterval
	// Session is a labelled synthetic sensor recording.
	Session = kinect.Session
	// ScriptItem is one step of a simulated session script.
	ScriptItem = kinect.ScriptItem
	// PerformOpts varies a simulated gesture performance.
	PerformOpts = kinect.PerformOpts
	// Simulator synthesizes skeleton streams (the Kinect stand-in).
	Simulator = kinect.Simulator
	// GestureSpec parametrizes a synthetic gesture.
	GestureSpec = kinect.GestureSpec
	// Joint identifies a skeleton joint.
	Joint = kinect.Joint
)

// Re-exported constructors and constants.
var (
	// DefaultProfile, ChildProfile and TallProfile are ready-made users.
	DefaultProfile = kinect.DefaultProfile
	ChildProfile   = kinect.ChildProfile
	TallProfile    = kinect.TallProfile
	// StandardGestures returns the built-in gesture library.
	StandardGestures = kinect.StandardGestures
	// DefaultLearnConfig returns the standard learning configuration.
	DefaultLearnConfig = learn.DefaultConfig
	// DefaultTransform returns the full §3.2 transformation.
	DefaultTransform = transform.DefaultConfig
)

// NewSimulator creates a deterministic skeleton simulator with default
// sensor noise.
func NewSimulator(p Profile, seed int64) (*Simulator, error) {
	return kinect.NewSimulator(p, kinect.DefaultNoise(), seed)
}

// System bundles the engine, the kinect→kinect_t pipeline and a gesture
// database.
type System struct {
	Engine *anduin.Engine
	DB     *gesturedb.DB

	raw  *stream.Stream
	view *stream.Stream
	// deployed maps gesture name → engine query id.
	deployed map[string]int
}

// NewSystem builds a ready-to-use system with the full invariance
// transformation.
func NewSystem() (*System, error) {
	return NewSystemWith(transform.DefaultConfig())
}

// NewSystemWith builds a system with a custom transformation configuration
// (e.g. for ablation studies).
func NewSystemWith(cfg TransformConfig) (*System, error) {
	e := anduin.New()
	raw, view, err := e.KinectPipeline(cfg)
	if err != nil {
		return nil, err
	}
	return &System{
		Engine:   e,
		DB:       gesturedb.New(),
		raw:      raw,
		view:     view,
		deployed: make(map[string]int),
	}, nil
}

// Learn runs the §3.3 pipeline on recorded camera-frame samples with the
// default configuration and stores the result in the system's gesture
// database.
func (s *System) Learn(name string, samples [][]Frame) (*LearnResult, error) {
	return s.LearnWith(name, samples, learn.DefaultConfig())
}

// LearnWith is Learn with an explicit pipeline configuration.
func (s *System) LearnWith(name string, samples [][]Frame, cfg LearnConfig) (*LearnResult, error) {
	res, err := learn.Learn(name, samples, cfg)
	if err != nil {
		return nil, err
	}
	entry := gesturedb.Entry{
		Name:      name,
		QueryText: res.QueryText,
		Model:     res.Model,
	}
	if err := s.DB.Put(entry); err != nil {
		return nil, err
	}
	return res, nil
}

// Deploy activates the stored gesture's query; a previously deployed
// version of the same gesture is undeployed first (runtime exchange).
func (s *System) Deploy(name string) error {
	entry, ok := s.DB.Get(name)
	if !ok {
		return fmt.Errorf("gesture: %q not in the database", name)
	}
	if id, live := s.deployed[name]; live {
		if err := s.Engine.Undeploy(id); err != nil {
			return err
		}
		delete(s.deployed, name)
	}
	id, err := s.Engine.DeployText(entry.QueryText)
	if err != nil {
		return err
	}
	s.deployed[name] = id
	return nil
}

// DeployAll activates every stored gesture.
func (s *System) DeployAll() error {
	for _, e := range s.DB.List() {
		if err := s.Deploy(e.Name); err != nil {
			return err
		}
	}
	return nil
}

// Undeploy deactivates a gesture's query.
func (s *System) Undeploy(name string) error {
	id, ok := s.deployed[name]
	if !ok {
		return fmt.Errorf("gesture: %q is not deployed", name)
	}
	delete(s.deployed, name)
	return s.Engine.Undeploy(id)
}

// Deployed returns the names of live gestures.
func (s *System) Deployed() []string {
	out := make([]string, 0, len(s.deployed))
	for _, e := range s.DB.List() {
		if _, ok := s.deployed[e.Name]; ok {
			out = append(out, e.Name)
		}
	}
	return out
}

// OnDetection registers a detection listener; the returned function removes
// it.
func (s *System) OnDetection(fn func(Detection)) func() {
	return s.Engine.Subscribe(fn)
}

// Feed pushes one camera frame into the pipeline.
func (s *System) Feed(f Frame) error {
	return s.raw.Publish(kinect.ToTuple(f))
}

// Replay pushes a frame sequence through the pipeline as fast as possible.
func (s *System) Replay(frames []Frame) error {
	return stream.Replay(s.raw, kinect.ToTuples(frames))
}

// CrossCheck runs the §3.3.3 overlap analysis over all stored gestures.
func (s *System) CrossCheck(threshold float64) validate.ConflictReport {
	return validate.CheckAll(s.DB.Models(), threshold)
}

// SaveGestures persists the gesture database to a JSON file.
func (s *System) SaveGestures(path string) error { return s.DB.Save(path) }

// LoadGestures replaces the gesture database from a JSON file (nothing is
// deployed automatically).
func (s *System) LoadGestures(path string) error {
	db, err := gesturedb.Load(path)
	if err != nil {
		return err
	}
	s.DB = db
	return nil
}

// --- Multi-tenant serving (the internal/serve runtime). ---

// Re-exported serving types, so applications only import this package.
type (
	// Plan is a compiled, immutable gesture query shareable across any
	// number of sessions and engines.
	Plan = anduin.Plan
	// PlanRegistry compiles each learned query once into a shared Plan.
	PlanRegistry = serve.Registry
	// ServeConfig tunes the session manager (shards, queue depth,
	// backpressure policy, transformation).
	ServeConfig = serve.Config
	// ServeManager multiplexes many detection sessions over a fleet of
	// shard worker goroutines.
	ServeManager = serve.Manager
	// ServeSession is one tenant: a private engine fed through the
	// sharded ingestion layer.
	ServeSession = serve.Session
	// ServeSessionOptions tunes one session beyond plan selection (e.g.
	// a stream-store recording tap).
	ServeSessionOptions = serve.SessionOptions
	// ServeSessionMetrics is a per-session counter snapshot inside
	// ServeMetrics.
	ServeSessionMetrics = serve.SessionMetrics
	// ServeMetrics is a point-in-time snapshot of the fleet's counters.
	ServeMetrics = serve.Metrics
	// BackpressurePolicy selects the behaviour of a full shard queue.
	BackpressurePolicy = serve.Policy
)

// Backpressure policies for ServeConfig.Policy.
const (
	// BlockWhenFull makes Feed wait for a free queue slot (lossless).
	BlockWhenFull = serve.Block
	// DropOldestWhenFull evicts the oldest queued tuple (bounded latency;
	// drops are counted).
	DropOldestWhenFull = serve.DropOldest
)

// NewPlanRegistry creates an empty shared-plan registry compiling against
// the canonical kinect/kinect_t environment.
func NewPlanRegistry() *PlanRegistry { return serve.NewRegistry() }

// NewServeManager starts the multi-tenant detection runtime: a fleet of
// shard workers serving sessions that deploy plans from reg.
func NewServeManager(cfg ServeConfig, reg *PlanRegistry) (*ServeManager, error) {
	return serve.NewManager(cfg, reg)
}

// ExportPlans compiles every gesture stored in the system's database into
// reg, making the learned queries deployable by serving sessions.
func (s *System) ExportPlans(reg *PlanRegistry) error {
	for _, e := range s.DB.List() {
		if _, err := reg.Replace(e.Name, e.QueryText); err != nil {
			return err
		}
	}
	return nil
}

// --- Network ingestion (the internal/wire protocol). ---

// Re-exported wire types, so remote applications only import this package.
type (
	// WireServer accepts wire-protocol TCP connections and multiplexes
	// their sessions onto a ServeManager.
	WireServer = wire.Server
	// WireClient is one client connection to a gestured server; many
	// remote sessions can be attached and fed concurrently.
	WireClient = wire.Client
	// WireSession is the client-side handle of one served session.
	WireSession = wire.RemoteSession
	// WireAttachOptions tunes a remote session (plans, batching,
	// detection delivery).
	WireAttachOptions = wire.AttachOptions
	// WireSessionCounters is the server-side ingestion accounting returned
	// by flush and detach acknowledgements.
	WireSessionCounters = wire.SessionCounters
)

// NewWireServer creates a network ingestion server over a session manager.
// Start it with ListenAndServe (or Serve on an existing listener):
//
//	srv := gesture.NewWireServer(m)
//	go srv.ListenAndServe(":7474")
func NewWireServer(m *ServeManager) *WireServer { return wire.NewServer(m) }

// DialWire connects to a gestured server.
func DialWire(addr string) (*WireClient, error) { return wire.Dial(addr) }

// --- Cluster gateway (the internal/cluster scale-out layer). ---

// Re-exported cluster types, so scale-out deployments only import this
// package.
type (
	// ClusterBackend describes one wire backend a gateway fronts (ID +
	// address).
	ClusterBackend = cluster.Backend
	// ClusterConfig tunes a gateway: backend fleet, ring geometry
	// (virtual nodes, bounded-load factor), health probing and backend
	// recovery (Readmit / TolerateDown).
	ClusterConfig = cluster.Config
	// ClusterBackendState is one step of a gateway backend's lifecycle
	// state machine: live → ejected → recovering → live again (a fresh
	// incarnation) on re-admission.
	ClusterBackendState = cluster.BackendState
	// ClusterGateway terminates the wire protocol in front of a backend
	// fleet, sharding sessions with a bounded-load consistent-hash ring,
	// ejecting unhealthy backends and re-homing their sessions.
	ClusterGateway = cluster.Gateway
	// ClusterRing is the consistent-hash ring (virtual nodes +
	// bounded-load placement) the gateway shards sessions with.
	ClusterRing = cluster.Ring
	// ClusterSpawner runs an in-process fleet of wire backends sharing
	// one plan registry (the all-in-one cluster deployment).
	ClusterSpawner = cluster.Spawner
	// ClusterSpawnOptions tunes spawned backends (serve config, recording
	// hook).
	ClusterSpawnOptions = cluster.SpawnOptions
	// BackendMetrics is the per-backend section of a gateway's aggregated
	// metrics snapshot.
	BackendMetrics = serve.BackendMetrics
)

// Backend lifecycle states, re-exported for ClusterGateway.State callers.
const (
	ClusterStateLive       = cluster.StateLive
	ClusterStateEjected    = cluster.StateEjected
	ClusterStateRecovering = cluster.StateRecovering
)

// NewClusterRing creates an empty consistent-hash ring (vnodes <= 0 and
// factor < 1 select the defaults).
func NewClusterRing(vnodes int, factor float64) *ClusterRing {
	return cluster.NewRing(vnodes, factor)
}

// NewClusterGateway dials the configured backends and builds the gateway;
// start it with ListenAndServe (or Serve on an existing listener), exactly
// like a WireServer.
func NewClusterGateway(cfg ClusterConfig) (*ClusterGateway, error) {
	return cluster.NewGateway(cfg)
}

// SpawnCluster starts n in-process wire backends sharing reg — pass their
// descriptors (Spawner.Backends) to NewClusterGateway for an all-in-one
// cluster.
func SpawnCluster(n int, reg *PlanRegistry, opts ClusterSpawnOptions) (*ClusterSpawner, error) {
	return cluster.Spawn(n, reg, opts)
}

// --- Durable stream store (the internal/store subsystem). ---

// Re-exported store types, so recording/replay/backfill applications only
// import this package.
type (
	// StoreOptions tunes a stream writer (segment size, record batching,
	// fsync).
	StoreOptions = store.Options
	// StoreManifest is the immutable metadata of one recorded stream.
	StoreManifest = store.Manifest
	// StoreWriter appends tuples to one recorded stream as CRC-framed,
	// segmented records.
	StoreWriter = store.Writer
	// StoreReader iterates a recorded stream in append order, verifying
	// every record.
	StoreReader = store.Reader
	// StoreRecorder taps a live serving session into a stream store
	// without ever blocking the hot path.
	StoreRecorder = store.Recorder
	// StoreArchive manages the recordings of a whole server under one
	// root directory.
	StoreArchive = store.Archive
	// ReplayStoreOptions tunes playback speed (0 = max, 1 = wall clock).
	ReplayStoreOptions = store.ReplayOptions
	// ReplayStoreStats reports what a replay delivered.
	ReplayStoreStats = store.ReplayStats
	// BackfillOptions tunes offline plan evaluation over recorded history.
	BackfillOptions = store.BackfillOptions
)

// CreateStore initializes a new recorded stream of raw kinect tuples under
// root; record into it with NewStoreRecorder or StoreWriter.Append.
func CreateStore(root, name string, opts StoreOptions) (*StoreWriter, error) {
	return store.Create(root, name, kinect.Schema(), opts)
}

// OpenStore resumes appending to an existing recorded stream, repairing a
// torn tail left by a crash (see StoreWriter.Recovered).
func OpenStore(root, name string, opts StoreOptions) (*StoreWriter, error) {
	return store.Open(root, name, opts)
}

// OpenStoreReader opens a recorded stream for sequential reading.
func OpenStoreReader(root, name string) (*StoreReader, error) {
	return store.OpenReader(root, name)
}

// ListStores lists the recorded streams under root.
func ListStores(root string) ([]string, error) { return store.ListStreams(root) }

// NewStoreRecorder starts recording into w through a bounded, drop-counting
// buffer; install the recorder's Tap on a serving session via
// ServeSessionOptions.Tap.
func NewStoreRecorder(w *StoreWriter, buffer int) *StoreRecorder {
	return store.NewRecorder(w, buffer)
}

// NewStoreArchive creates a per-server recording archive rooted at dir.
func NewStoreArchive(root string, opts StoreOptions) *StoreArchive {
	return store.NewArchive(root, opts, 0)
}

// ReplayStore feeds a recorded history through a serving session at the
// configured speed; detections are byte-identical to the original run.
func ReplayStore(r *StoreReader, sess *ServeSession, opts ReplayStoreOptions) (ReplayStoreStats, error) {
	return store.ReplayToSession(r, sess, opts)
}

// BackfillStore evaluates compiled plans over a recorded history offline
// and returns the detections they produce.
func BackfillStore(r *StoreReader, plans []*Plan, opts BackfillOptions) ([]Detection, error) {
	return store.Backfill(r, plans, opts)
}

// Evaluate scores detections against a session's ground truth.
func Evaluate(truth []TruthInterval, dets []Detection, tolerance time.Duration) map[string]Outcome {
	return detect.Evaluate(truth, dets, tolerance)
}

// DefaultTolerance is the standard truth-matching tolerance.
const DefaultTolerance = detect.DefaultTolerance
